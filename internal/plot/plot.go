// Package plot renders simple SVG line charts with the standard library
// only, so the experiment tools can regenerate the paper's figures as
// images as well as tables. The output is intentionally minimal: axes
// with tick labels, one polyline per series, and a legend.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// Series is one labeled curve.
type Series struct {
	Label string
	X, Y  []float64
}

// Chart is a line chart.
type Chart struct {
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Width and Height in pixels; zero selects 640x400.
	Width, Height int
	// YMin/YMax fix the y range; both zero means auto.
	YMin, YMax float64
}

// palette holds visually distinct stroke colors.
var palette = []string{
	"#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e",
	"#8c564b", "#17becf", "#7f7f7f",
}

const (
	marginL = 60
	marginR = 20
	marginT = 36
	marginB = 46
)

// WriteSVG renders the chart.
func (c Chart) WriteSVG(w io.Writer) error {
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	width, height := c.Width, c.Height
	if width <= 0 {
		width = 640
	}
	if height <= 0 {
		height = 400
	}
	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	for _, s := range c.Series {
		if len(s.X) != len(s.Y) {
			return fmt.Errorf("plot: series %q has %d x values and %d y values", s.Label, len(s.X), len(s.Y))
		}
		for i := range s.X {
			xMin = math.Min(xMin, s.X[i])
			xMax = math.Max(xMax, s.X[i])
			yMin = math.Min(yMin, s.Y[i])
			yMax = math.Max(yMax, s.Y[i])
		}
	}
	if c.YMin != 0 || c.YMax != 0 {
		yMin, yMax = c.YMin, c.YMax
	} else {
		yMin = math.Min(yMin, 0)
		yMax += (yMax - yMin) * 0.05
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if yMax == yMin {
		yMax = yMin + 1
	}

	plotW := float64(width - marginL - marginR)
	plotH := float64(height - marginT - marginB)
	px := func(x float64) float64 { return marginL + (x-xMin)/(xMax-xMin)*plotW }
	py := func(y float64) float64 { return marginT + plotH - (y-yMin)/(yMax-yMin)*plotH }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n", width, height)
	fmt.Fprintf(&b, `<rect width="%d" height="%d" fill="white"/>`+"\n", width, height)
	fmt.Fprintf(&b, `<text x="%d" y="20" font-size="14" font-weight="bold">%s</text>`+"\n", marginL, esc(c.Title))

	// Axes.
	fmt.Fprintf(&b, `<line x1="%d" y1="%v" x2="%v" y2="%v" stroke="black"/>`+"\n",
		marginL, py(yMin), px(xMax), py(yMin))
	fmt.Fprintf(&b, `<line x1="%d" y1="%v" x2="%d" y2="%v" stroke="black"/>`+"\n",
		marginL, py(yMin), marginL, py(yMax))

	// Ticks: five per axis.
	for t := 0; t <= 4; t++ {
		xv := xMin + (xMax-xMin)*float64(t)/4
		yv := yMin + (yMax-yMin)*float64(t)/4
		fmt.Fprintf(&b, `<text x="%v" y="%v" text-anchor="middle">%s</text>`+"\n",
			px(xv), float64(height-marginB+18), fmtTick(xv))
		fmt.Fprintf(&b, `<line x1="%v" y1="%v" x2="%v" y2="%v" stroke="#ccc"/>`+"\n",
			px(xMin), py(yv), px(xMax), py(yv))
		fmt.Fprintf(&b, `<text x="%v" y="%v" text-anchor="end">%s</text>`+"\n",
			float64(marginL-6), py(yv)+4, fmtTick(yv))
	}
	fmt.Fprintf(&b, `<text x="%v" y="%d" text-anchor="middle">%s</text>`+"\n",
		marginL+plotW/2, height-8, esc(c.XLabel))
	fmt.Fprintf(&b, `<text x="14" y="%v" text-anchor="middle" transform="rotate(-90 14 %v)">%s</text>`+"\n",
		marginT+plotH/2, marginT+plotH/2, esc(c.YLabel))

	// Series.
	for si, s := range c.Series {
		color := palette[si%len(palette)]
		var pts []string
		for i := range s.X {
			pts = append(pts, fmt.Sprintf("%.1f,%.1f", px(s.X[i]), py(s.Y[i])))
		}
		fmt.Fprintf(&b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
			strings.Join(pts, " "), color)
		// Legend entry.
		ly := marginT + 14 + si*16
		fmt.Fprintf(&b, `<line x1="%v" y1="%d" x2="%v" y2="%d" stroke="%s" stroke-width="2"/>`+"\n",
			plotW+marginL-110, ly-4, plotW+marginL-86, ly-4, color)
		fmt.Fprintf(&b, `<text x="%v" y="%d">%s</text>`+"\n", plotW+marginL-80, ly, esc(s.Label))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func fmtTick(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e6 {
		return fmt.Sprintf("%.0f", v)
	}
	return fmt.Sprintf("%.1f", v)
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
