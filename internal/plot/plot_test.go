package plot

import (
	"bytes"
	"encoding/xml"
	"strings"
	"testing"
)

func sampleChart() Chart {
	return Chart{
		Title:  "JACOBI: L1 miss rate",
		XLabel: "problem size N",
		YLabel: "miss rate (%)",
		Series: []Series{
			{Label: "Orig", X: []float64{200, 300, 400}, Y: []float64{32, 34, 30}},
			{Label: "GcdPad", X: []float64{200, 300, 400}, Y: []float64{20, 19, 21}},
		},
	}
}

func TestWriteSVGWellFormed(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleChart().WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	// The output must be well-formed XML.
	dec := xml.NewDecoder(bytes.NewReader(buf.Bytes()))
	for {
		_, err := dec.Token()
		if err != nil {
			if err.Error() == "EOF" {
				break
			}
			t.Fatalf("SVG not well-formed: %v", err)
		}
	}
	out := buf.String()
	for _, want := range []string{"<svg", "polyline", "Orig", "GcdPad", "miss rate"} {
		if !strings.Contains(out, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
}

func TestWriteSVGErrors(t *testing.T) {
	var buf bytes.Buffer
	if err := (Chart{}).WriteSVG(&buf); err == nil {
		t.Error("empty chart accepted")
	}
	c := sampleChart()
	c.Series[0].Y = c.Series[0].Y[:1]
	if err := c.WriteSVG(&buf); err == nil {
		t.Error("mismatched series lengths accepted")
	}
}

func TestWriteSVGEscapes(t *testing.T) {
	c := sampleChart()
	c.Title = "a < b & c"
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "a < b & c") {
		t.Error("title not escaped")
	}
	if !strings.Contains(buf.String(), "a &lt; b &amp; c") {
		t.Error("escaped title missing")
	}
}

func TestWriteSVGDegenerateRanges(t *testing.T) {
	c := Chart{Series: []Series{{Label: "flat", X: []float64{1, 1}, Y: []float64{5, 5}}}}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatalf("degenerate ranges: %v", err)
	}
	if strings.Contains(buf.String(), "NaN") || strings.Contains(buf.String(), "Inf") {
		t.Error("degenerate ranges produced NaN/Inf coordinates")
	}
}
