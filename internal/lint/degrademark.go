package lint

import (
	"fmt"
	"go/ast"
	"go/token"

	"tiling3d/internal/lint/analysis"
	"tiling3d/internal/lint/cfg"
)

// Degrademark enforces honest degradation: when a response field is
// filled from a fallback producer (a function annotated
// `//lint:fallback mark=<Field>`, the analytic miss model standing in
// for a real simulation), the response must also carry the degradation
// mark — `<base>.<Field> = true` — on every path through that
// assignment. A path that stores the fallback but can reach the
// function's exit without ever setting the mark (before or after the
// store) ships a degraded answer disguised as a measured one.
//
// Call sites where the analytic model is the *requested* source rather
// than a fallback say so with //lint:allow degrademark -- reason.
var Degrademark = &analysis.Analyzer{
	Name: "degrademark",
	Doc:  "fallback-producer results (//lint:fallback) must be accompanied by the degradation mark on every path",
	Run:  runDegrademark,
}

func runDegrademark(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			degradeScope(pass, fd.Body)
		}
	}
	return nil, nil
}

// degradeScope checks one function scope; literals are their own
// scopes.
func degradeScope(pass *analysis.Pass, body *ast.BlockStmt) {
	var sites []*fallbackSite
	var nested []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			nested = append(nested, lit)
			return false
		}
		if as, ok := n.(*ast.AssignStmt); ok {
			if site := classifyFallbackAssign(pass, as); site != nil {
				sites = append(sites, site)
			}
		}
		return true
	})
	if len(sites) > 0 {
		g := cfg.New(body)
		for _, site := range sites {
			checkFallbackSite(pass, g, site)
		}
	}
	for _, lit := range nested {
		degradeScope(pass, lit.Body)
	}
}

// fallbackSite is one `base.Field = fallbackCall(...)` assignment.
type fallbackSite struct {
	assign  *ast.AssignStmt
	callee  string // rendered producer name for the diagnostic
	mark    string // required mark field (FallbackSpec.Mark)
	baseKey string // structural identity of <base>
}

// classifyFallbackAssign recognizes single assignments whose RHS is a
// call to an annotated fallback producer and whose LHS selects a field
// of some base value. Plain-identifier destinations are out of scope:
// the invariant is about response structs carrying their own mark.
func classifyFallbackAssign(pass *analysis.Pass, as *ast.AssignStmt) *fallbackSite {
	if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return nil
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return nil
	}
	fn := calleeFunc(pass, call)
	spec, ok := pass.Facts.FallbackFor(fn)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(as.Lhs[0]).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	baseKey := exprKey(pass, sel.X)
	if baseKey == "" {
		return nil
	}
	return &fallbackSite{assign: as, callee: acquireName(fn), mark: spec.Mark, baseKey: baseKey}
}

// exprKey renders a selector chain rooted at an identifier into a
// structural identity string ("" when the shape is anything else). The
// root is identified by its object so shadowing cannot alias.
func exprKey(pass *analysis.Pass, e ast.Expr) string {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := pass.TypesInfo.Uses[e]
		if obj == nil {
			obj = pass.TypesInfo.Defs[e]
		}
		if obj == nil {
			return ""
		}
		return fmt.Sprintf("%p", obj)
	case *ast.SelectorExpr:
		base := exprKey(pass, e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.StarExpr:
		return exprKey(pass, e.X)
	}
	return ""
}

// marksNode reports whether the node contains a store of the mark on
// the site's base: `base.Mark = true`, or a composite literal binding
// `Mark: true` assigned to the base itself.
func marksNode(pass *analysis.Pass, site *fallbackSite, n ast.Node) bool {
	found := false
	ast.Inspect(n, func(x ast.Node) bool {
		if found {
			return false
		}
		as, ok := x.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		// base.Mark = true
		if sel, ok := ast.Unparen(as.Lhs[0]).(*ast.SelectorExpr); ok && sel.Sel.Name == site.mark {
			if exprKey(pass, sel.X) == site.baseKey && isTrueExpr(as.Rhs[0]) {
				found = true
				return false
			}
		}
		// base = Type{..., Mark: true, ...} (possibly &-composite)
		if exprKey(pass, as.Lhs[0]) == site.baseKey {
			rhs := ast.Unparen(as.Rhs[0])
			if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.AND {
				rhs = ast.Unparen(u.X)
			}
			if lit, ok := rhs.(*ast.CompositeLit); ok {
				for _, el := range lit.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						if id, ok := kv.Key.(*ast.Ident); ok && id.Name == site.mark && isTrueExpr(kv.Value) {
							found = true
							return false
						}
					}
				}
			}
		}
		return true
	})
	return found
}

func isTrueExpr(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "true"
}

// checkFallbackSite reports when some entry→assignment→exit path never
// stores the mark.
func checkFallbackSite(pass *analysis.Pass, g *cfg.Graph, site *fallbackSite) {
	blk, idx := findAssign(g, site.assign)
	if blk == nil {
		return
	}
	// Same-block mark (before or after the assignment) dominates every
	// path through it.
	for i, n := range blk.Nodes {
		if i != idx && marksNode(pass, site, n) {
			return
		}
	}
	marks := func(b *cfg.Block) bool {
		for _, n := range b.Nodes {
			if marksNode(pass, site, n) {
				return true
			}
		}
		return false
	}
	unmarkedBefore := blk == g.Entry || reachesBlock(g.Entry, blk, marks)
	unmarkedAfter := reachesExit(g, blk, marks)
	if unmarkedBefore && unmarkedAfter {
		pass.Reportf(site.assign.Pos(),
			"fallback from %s is stored without setting %s = true on some path; mark the degradation or justify with //lint:allow degrademark",
			site.callee, site.mark)
	}
}

// findAssign locates the block and index holding the assignment node
// itself (not merely containing it inside a nested literal).
func findAssign(g *cfg.Graph, as *ast.AssignStmt) (*cfg.Block, int) {
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			found := false
			ast.Inspect(n, func(x ast.Node) bool {
				if x == as {
					found = true
				}
				return !found
			})
			if found {
				return blk, i
			}
		}
	}
	return nil, -1
}

// reachesBlock reports whether target is reachable from start without
// passing through a block where stop holds (start is not tested; target
// only needs to be entered).
func reachesBlock(start, target *cfg.Block, stop func(*cfg.Block) bool) bool {
	if start == target {
		return true
	}
	if stop(start) {
		// Every node of a block runs before its successors, so a mark
		// anywhere in the start block covers all paths out of it.
		return false
	}
	seen := map[*cfg.Block]bool{start: true}
	stack := []*cfg.Block{start}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range b.Succs {
			if e.To == target {
				return true
			}
			if seen[e.To] || stop(e.To) {
				continue
			}
			seen[e.To] = true
			stack = append(stack, e.To)
		}
	}
	return false
}

// reachesExit reports whether the exit is reachable from the block's
// successors (non-panic edges) without passing a stop block.
func reachesExit(g *cfg.Graph, from *cfg.Block, stop func(*cfg.Block) bool) bool {
	seen := map[*cfg.Block]bool{}
	var stack []*cfg.Block
	push := func(b *cfg.Block) {
		if !seen[b] {
			seen[b] = true
			stack = append(stack, b)
		}
	}
	for _, e := range from.Succs {
		if e.Panic {
			continue
		}
		if e.To == g.Exit {
			return true
		}
		if !stop(e.To) {
			push(e.To)
		}
	}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range b.Succs {
			if e.Panic {
				continue
			}
			if e.To == g.Exit {
				return true
			}
			if !stop(e.To) {
				push(e.To)
			}
		}
	}
	return false
}
