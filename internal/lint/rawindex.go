package lint

import (
	"go/ast"
	"go/token"

	"tiling3d/internal/lint/analysis"
)

// Rawindex reports indexing a grid's flat Data buffer with hand-rolled
// stride arithmetic (any multiplication inside the index expression):
// `g.Data[k*nij+j*ni+i]` silently reads the wrong element once the grid
// is padded, which is the whole point of the padding methods. Compute
// the base with Index()/row helpers instead, or annotate deliberate
// stride math with //lint:allow rawindex.
var Rawindex = &analysis.Analyzer{
	Name: "rawindex",
	Doc:  "flag hand-rolled flat-index arithmetic on grid Data buffers",
	Run:  runRawindex,
}

func runRawindex(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			idx, ok := n.(*ast.IndexExpr)
			if !ok {
				return true
			}
			sel, ok := idx.X.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Data" {
				return true
			}
			if containsMul(idx.Index) {
				pass.Reportf(idx.Pos(), "hand-rolled stride arithmetic indexing %s.Data; use Index() or a row-base helper (padding changes the strides)", exprText(sel.X))
			}
			return true
		})
	}
	return nil, nil
}

// containsMul reports whether the expression tree contains a
// multiplication — the signature of stride recomputation.
func containsMul(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && b.Op == token.MUL {
			found = true
			return false
		}
		return !found
	})
	return found
}

// exprText renders simple receiver expressions for the message.
func exprText(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprText(x.X) + "." + x.Sel.Name
	default:
		return "grid"
	}
}
