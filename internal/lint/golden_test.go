package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"tiling3d/internal/lint/analysis"
)

// The golden packages under testdata/src each exercise one analyzer (or
// the driver's allow hygiene) against `// want `regex“ expectation
// comments: every finding must be expected, every expectation must
// fire. probeleak and flightpanic are the seeded regressions — the PR 8
// probe-leak and singleflight-panic patterns reproduced pre-fix; if
// their diagnostics ever disappear these tests fail.
func TestGolden(t *testing.T) {
	dirs, err := filepath.Glob(filepath.Join("testdata", "src", "*"))
	if err != nil || len(dirs) == 0 {
		t.Fatalf("no golden packages: %v", err)
	}
	for _, dir := range dirs {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			checkGolden(t, dir)
		})
	}
}

func checkGolden(t *testing.T, dir string) {
	t.Helper()
	findings, err := Run([]string{dir}, Analyzers())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	wants := collectWants(t, dir)
	for _, f := range findings {
		if w := matchWant(wants, f.File, f.Line, f.Message); w != nil {
			w.hit = true
			continue
		}
		t.Errorf("unexpected finding: %s", f)
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected finding matching %q did not fire", w.file, w.line, w.re)
		}
	}
}

// expectation is one `// want `regex“ comment.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var (
	wantLineRE = regexp.MustCompile(`// want (.+)$`)
	wantArgRE  = regexp.MustCompile("`([^`]*)`")
)

func collectWants(t *testing.T, dir string) []*expectation {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	var out []*expectation
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		abs, err := filepath.Abs(path)
		if err != nil {
			t.Fatalf("abs %s: %v", path, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read %s: %v", path, err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantLineRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			args := wantArgRE.FindAllStringSubmatch(m[1], -1)
			if len(args) == 0 {
				t.Fatalf("%s:%d: want comment without a backquoted pattern", path, i+1)
			}
			for _, a := range args {
				re, err := regexp.Compile(a[1])
				if err != nil {
					t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, a[1], err)
				}
				out = append(out, &expectation{file: abs, line: i + 1, re: re})
			}
		}
	}
	return out
}

func matchWant(wants []*expectation, file string, line int, msg string) *expectation {
	for _, w := range wants {
		if !w.hit && w.file == file && w.line == line && w.re.MatchString(msg) {
			return w
		}
	}
	return nil
}

// TestSeededRegressions pins the two PR 8 incident patterns by name:
// the probe-leak and the singleflight panic-poisoning must stay flagged
// by the settle analyzer alone.
func TestSeededRegressions(t *testing.T) {
	findings, err := Run(
		[]string{filepath.Join("testdata", "src", "probeleak"), filepath.Join("testdata", "src", "flightpanic")},
		[]*analysis.Analyzer{Settle},
	)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var probe, flight bool
	for _, f := range findings {
		if strings.Contains(f.Message, "Breaker.Allow is not settled") {
			probe = true
		}
		if strings.Contains(f.Message, "Cache.claim is not panic-safe") {
			flight = true
		}
	}
	if !probe {
		t.Error("the PR 8 probe-leak pattern is no longer flagged by the settle analyzer")
	}
	if !flight {
		t.Error("the PR 8 singleflight panic-poisoning pattern is no longer flagged by the settle analyzer")
	}
}
