// Package ctxleak exercises the ctxflow analyzer: minting a fresh
// context where the caller's is in scope severs cancellation, the
// nil-default idiom is sanctioned, and funclit goroutines must be able
// to observe the in-scope context.
package ctxleak

import "context"

func use(ctx context.Context) {}

func severed(ctx context.Context) {
	use(context.Background()) // want `context\.Background\(\) severs the context chain: parameter ctx is in scope`
}

func severedTODO(ctx context.Context) {
	use(context.TODO()) // want `context\.TODO\(\) severs the context chain: parameter ctx is in scope`
}

// nilDefault is the sanctioned idiom: defaulting the very parameter
// that was nil.
func nilDefault(ctx context.Context) {
	if ctx == nil {
		ctx = context.Background()
	}
	use(ctx)
}

// topLevel has no context parameter anywhere in scope; minting one is
// the only option.
func topLevel() {
	use(context.Background())
}

// nestedLit inherits the enclosing scope: the literal has no ctx
// parameter of its own, but the declaration does.
func nestedLit(ctx context.Context) {
	f := func() {
		use(context.Background()) // want `context\.Background\(\) severs the context chain: parameter ctx is in scope`
	}
	f()
}

// goroutineBlind can never observe cancellation.
func goroutineBlind(ctx context.Context, done chan struct{}) {
	go func() { // want `goroutine cannot observe cancellation: ctx is in scope but the literal neither captures nor receives a context`
		<-done
	}()
	<-ctx.Done()
}

// goroutineCaptures watches ctx directly.
func goroutineCaptures(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// goroutineReceives is handed the context as an argument.
func goroutineReceives(ctx context.Context) {
	go func(c context.Context) {
		<-c.Done()
	}(ctx)
}

// goroutineWatchesSignal captures a cancellation signal derived from
// the context — ctx.Done() is a <-chan struct{} — which observes
// shutdown just as well as the context itself.
func goroutineWatchesSignal(ctx context.Context, work chan int) {
	done := ctx.Done()
	go func() {
		for {
			select {
			case <-done:
				return
			case w := <-work:
				_ = w
			}
		}
	}()
}
