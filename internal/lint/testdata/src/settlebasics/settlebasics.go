// Package settlebasics exercises the settle analyzer's guard and
// tracking modes beyond the two regression fixtures: error-guarded
// acquires, the built-in timer pairs, discarded watchdogs, escape
// skips, and assertion-path exemptions.
package settlebasics

import (
	"errors"
	"time"
)

type gate struct{ full bool }

// acquire takes a slot; a non-nil error means nothing was claimed.
//
//lint:pair settle=release
func (g *gate) acquire() error {
	if g.full {
		return errors.New("full")
	}
	return nil
}

// release returns the slot.
func (g *gate) release() {}

func errGuardOK(g *gate) error {
	if err := g.acquire(); err != nil {
		return err
	}
	defer g.release()
	return nil
}

func errGuardLeak(g *gate) error {
	if err := g.acquire(); err != nil { // want `acquire gate\.acquire is not settled on the path reaching line \d+: need a call to release`
		return err
	}
	return nil
}

// assertionPathOK: paths ending in an explicit panic are assertions,
// not leaks.
func assertionPathOK(g *gate) {
	if err := g.acquire(); err != nil {
		panic(err)
	}
	g.release()
}

func timerOK(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	<-t.C
}

func timerLeak(d time.Duration) {
	t := time.NewTimer(d) // want `acquire time\.NewTimer is not settled on the path reaching line \d+: need a call to Stop`
	<-t.C
}

// watchdogDiscard drops the *Timer on the floor; nothing can ever stop
// it.
func watchdogDiscard(d time.Duration) {
	time.AfterFunc(d, func() {}) // want `result of time\.AfterFunc is discarded; keep the returned value and settle it with Stop`
}

func watchdogBlank(d time.Duration) {
	_ = time.NewTimer(d) // want `result of time\.NewTimer is discarded; keep the returned value and settle it with Stop`
}

func watchdogOK(d time.Duration, fn func()) {
	w := time.AfterFunc(d, fn)
	defer w.Stop()
	fn()
}

// escapeSkip hands the timer to the caller: settlement is the caller's
// burden, not this function's.
func escapeSkip(d time.Duration) *time.Timer {
	return time.NewTimer(d)
}

// branchSettleOK settles through either branch.
func branchSettleOK(g *gate, hard bool) error {
	if err := g.acquire(); err != nil {
		return err
	}
	if hard {
		g.release()
		return errors.New("hard stop")
	}
	g.release()
	return nil
}
