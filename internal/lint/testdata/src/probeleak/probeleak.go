// Package probeleak reproduces the PR 8 circuit-breaker probe leak as
// a regression fixture: a half-open probe claimed with Allow was never
// settled when the pool shed the request, so the breaker stayed wedged
// in half-open forever. The settle analyzer must flag the pre-fix shape
// and accept the fixed one.
package probeleak

import "errors"

var errSaturated = errors.New("saturated")

// Breaker is the minimal shape of the advisor's circuit breaker.
type Breaker struct{ state int }

// Allow claims the half-open probe slot when it returns true.
//
//lint:pair settle=Record,Cancel
func (b *Breaker) Allow() bool { return b.state == 0 }

// Record settles the probe with an outcome.
func (b *Breaker) Record(ok bool) {}

// Cancel releases the probe without an outcome.
func (b *Breaker) Cancel() {}

type pool struct{}

func (p *pool) Do(fn func() error) error { return fn() }

// computeLeaky is the pre-fix PR 8 pattern: the saturated-pool path
// returns while the probe claim is still outstanding.
func computeLeaky(b *Breaker, p *pool, fn func() error) error {
	if !b.Allow() { // want `acquire Breaker\.Allow is not settled on the path reaching line \d+: need a call to Record/Cancel`
		return errSaturated
	}
	err := p.Do(fn)
	if errors.Is(err, errSaturated) {
		return err // the probe leaks here
	}
	b.Record(err == nil)
	return nil
}

// computeFixed settles the probe on every path: Cancel on shed, Record
// on outcome.
func computeFixed(b *Breaker, p *pool, fn func() error) error {
	if !b.Allow() {
		return errSaturated
	}
	err := p.Do(fn)
	if errors.Is(err, errSaturated) {
		b.Cancel()
		return err
	}
	b.Record(err == nil)
	return nil
}

// deniedPathClean: a false Allow claims nothing, so the early return is
// not a leak.
func deniedPathClean(b *Breaker) error {
	if !b.Allow() {
		return errSaturated
	}
	b.Cancel()
	return nil
}
