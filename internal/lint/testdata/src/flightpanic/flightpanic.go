// Package flightpanic reproduces the PR 8 singleflight poisoning as a
// regression fixture: the flight owner settled the entry only after the
// compute call, so a panic in compute left the flight registered and
// unsettled — every later request for the key waited forever on a done
// channel nobody would close. The pair is declared panicguard: the
// settle analyzer must demand a deferred settle around may-panic calls.
package flightpanic

import "sync"

type flight struct {
	done chan struct{}
	resp interface{}
	err  error
}

// Cache is the minimal shape of the advisor's singleflight result
// cache.
type Cache struct {
	mu      sync.Mutex
	flights map[string]*flight
}

// claim registers interest in key: mine reports whether the caller owns
// the flight and must settle it.
//
//lint:pair settle=settleFlight panicguard
func (c *Cache) claim(key string) (f *flight, mine bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f, ok := c.flights[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	if c.flights == nil {
		c.flights = map[string]*flight{}
	}
	c.flights[key] = f
	return f, true
}

// settleFlight publishes the flight's outcome and unregisters it.
func (c *Cache) settleFlight(key string, f *flight) {
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
}

// doLeaky is the pre-fix PR 8 pattern: compute can panic before the
// flight settles, poisoning the key for every waiter.
func (c *Cache) doLeaky(key string, compute func() (interface{}, error)) (interface{}, error) {
	f, mine := c.claim(key) // want `acquire Cache\.claim is not panic-safe: the call at line \d+ can panic before the settle; defer the settleFlight`
	if !mine {
		<-f.done
		return f.resp, f.err
	}
	f.resp, f.err = compute()
	c.settleFlight(key, f)
	return f.resp, f.err
}

// doFixed defers the settle before compute runs, so a panic unwinds
// through it.
func (c *Cache) doFixed(key string, compute func() (interface{}, error)) (interface{}, error) {
	f, mine := c.claim(key)
	if !mine {
		<-f.done
		return f.resp, f.err
	}
	defer func() {
		c.settleFlight(key, f)
	}()
	f.resp, f.err = compute()
	return f.resp, f.err
}

// doWaiterOnly never owns the flight on the early path; waiting settles
// nothing and claims nothing.
func (c *Cache) doWaiterOnly(key string) (interface{}, error) {
	f, mine := c.claim(key)
	if !mine {
		<-f.done
		return f.resp, f.err
	}
	c.settleFlight(key, f)
	return f.resp, f.err
}
