// Package persistwrite exercises the atomicwrite analyzer inside a
// persisted package: direct in-place writes are flagged, the temp +
// rename protocol and append-only opens stay legal.
//
//lint:persist
package persistwrite

import "os"

func saveBad(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644) // want `os\.WriteFile writes a persisted file in place`
}

func createBad(path string) (*os.File, error) {
	return os.Create(path) // want `os\.Create truncates a persisted file in place`
}

func openBad(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644) // want `os\.OpenFile with O_CREATE/O_TRUNC rewrites a persisted file in place`
}

// appendOK is the journal's own protocol: append-only, no create, no
// truncate.
func appendOK(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
}

// saveGood is the sanctioned shape: temp file in the destination
// directory, then rename.
func saveGood(dir, path string, b []byte) error {
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := f.Write(b); err != nil {
		f.Close()
		os.Remove(f.Name())
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(f.Name())
		return err
	}
	return os.Rename(f.Name(), path)
}
