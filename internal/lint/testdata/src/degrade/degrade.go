// Package degrade exercises the degrademark analyzer: filling a
// response field from the annotated fallback producer requires the
// degradation mark on every path through the assignment.
package degrade

type miss struct{ cycles float64 }

type response struct {
	Miss     miss
	Degraded bool
}

// analytic is the stand-in miss model used when simulation is
// unavailable.
//
//lint:fallback mark=Degraded
func analytic(n int) miss { return miss{cycles: float64(n)} }

// markBefore sets the mark before storing the fallback.
func markBefore(resp *response, n int) {
	resp.Degraded = true
	resp.Miss = analytic(n)
}

// markAfter sets it after; same block, same guarantee.
func markAfter(resp *response, n int) {
	resp.Miss = analytic(n)
	resp.Degraded = true
}

// unmarked ships a fallback disguised as a measurement.
func unmarked(resp *response, n int) {
	resp.Miss = analytic(n) // want `fallback from degrade\.analytic is stored without setting Degraded = true on some path`
}

// partially marks only one branch after the store.
func partially(resp *response, n int, loud bool) {
	resp.Miss = analytic(n) // want `fallback from degrade\.analytic is stored without setting Degraded = true on some path`
	if loud {
		resp.Degraded = true
	}
}

// branchMarked marks on the only branch that stores.
func branchMarked(resp *response, n int, deep bool) {
	if !deep {
		resp.Degraded = true
		resp.Miss = analytic(n)
	}
}

// litMarked builds the response with the mark already set.
func litMarked(n int) *response {
	resp := &response{Degraded: true}
	resp.Miss = analytic(n)
	return resp
}
