// Package allowaudit exercises the driver's //lint:allow hygiene: a
// suppression must name an analyzer, carry a `-- reason` justification,
// and actually suppress something.
//
//lint:persist
package allowaudit

import "os"

// writeJustified is the healthy shape: named analyzer, real reason, and
// a finding to suppress.
func writeJustified(path string, b []byte) error {
	return os.WriteFile(path, b, 0o600) //lint:allow atomicwrite -- scratch mirror, rebuilt from the journal on start
}

// writeUnjustified suppresses the finding but gives no reason.
func writeUnjustified(path string, b []byte) error {
	return os.WriteFile(path, b, 0o600) //lint:allow atomicwrite // want `lint:allow atomicwrite has no justification \(append .-- reason.\)`
}

// nothingToSuppress: the allow matches no finding and has rotted into a
// blanket exemption.
func nothingToSuppress() int {
	x := 1 //lint:allow atomicwrite -- stale on purpose // want `stale lint:allow atomicwrite: it suppresses nothing`
	return x
}

// nameless names no analyzer at all — and therefore suppresses
// nothing: the write finding fires alongside the hygiene one.
func nameless(path string, b []byte) error {
	return os.WriteFile(path, b, 0o600) //lint:allow -- shrug // want `lint:allow names no analyzer` `os\.WriteFile writes a persisted file in place`
}
