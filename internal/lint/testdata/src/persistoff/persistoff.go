// Package persistoff pins the atomicwrite analyzer's scoping: without a
// //lint:persist marker the same writes are ordinary file IO and must
// not be flagged.
package persistoff

import "os"

func saveScratch(path string, b []byte) error {
	return os.WriteFile(path, b, 0o644)
}

func createScratch(path string) (*os.File, error) {
	return os.Create(path)
}
