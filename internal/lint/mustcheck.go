// Package lint holds the repo's custom analyzers and the driver that
// runs them over the source tree. Two analyzers enforce library
// conventions the compiler cannot:
//
//   - mustcheck: Must* constructors panic on bad input, so production
//     code must use the error-returning variants; Must* belongs in
//     tests, examples, and Must* wrappers.
//   - rawindex: flat-index arithmetic on grid buffers bypasses the
//     padded-layout accessors and silently breaks under padding.
//
// Deliberate exceptions carry a `//lint:allow <analyzer>` comment on
// the same line or the line above.
package lint

import (
	"go/ast"
	"regexp"
	"strings"

	"tiling3d/internal/lint/analysis"
)

var mustName = regexp.MustCompile(`^Must[A-Z0-9]`)

// Mustcheck reports calls to Must* constructors outside test files,
// examples, and Must* wrapper functions.
var Mustcheck = &analysis.Analyzer{
	Name: "mustcheck",
	Doc:  "flag Must* constructor calls in production code (use the error-returning variant)",
	Run:  runMustcheck,
}

func runMustcheck(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		name := pass.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") || underExamples(name) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			// A Must* wrapper is the sanctioned home of a Must* call (or
			// of the panic-on-error pattern it wraps).
			if mustName.MatchString(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := calleeName(call); callee != "" && mustName.MatchString(callee) {
					pass.Reportf(call.Pos(), "call to %s in production code; use the error-returning variant", callee)
				}
				return true
			})
		}
	}
	return nil, nil
}

// calleeName extracts the bare function name of a call: F(...) or
// pkg.F(...) / recv.F(...); anything else (calls through values) is "".
func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	default:
		return ""
	}
}

// underExamples reports whether the file sits in an examples/ tree.
func underExamples(path string) bool {
	return strings.Contains(path, "/examples/") || strings.HasPrefix(path, "examples/")
}
