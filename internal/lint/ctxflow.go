package lint

import (
	"go/ast"
	"go/types"

	"tiling3d/internal/lint/analysis"
)

// Ctxflow keeps cancellation wired through the advisor's call graph: a
// function that receives a context.Context must not sever it by minting
// context.Background() or context.TODO() further down (the request's
// deadline and cancellation would silently stop propagating), and a
// goroutine launched as a function literal inside such a function must
// capture or be handed a context so it can observe shutdown.
//
// The one sanctioned Background() is the nil-default idiom — assigning
// the fresh context to the very parameter that was nil:
//
//	if ctx == nil { ctx = context.Background() }
//
// Detached work that deliberately outlives the request (background
// jobs) documents itself with //lint:allow ctxflow -- reason.
var Ctxflow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "no context.Background/TODO where a ctx parameter is in scope; funclit goroutines must see a context",
	Run:  runCtxflow,
}

func runCtxflow(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			cw := &ctxWalk{pass: pass, exempt: exemptCtxCalls(pass, fd.Body)}
			cw.walkFunc(fd.Type, fd.Body, nil)
		}
	}
	return nil, nil
}

// typeOf resolves an expression's type like types.Info.TypeOf: the
// Types map first, then the object maps for bare identifiers.
func typeOf(pass *analysis.Pass, e ast.Expr) types.Type {
	if tv, ok := pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	if id, ok := ast.Unparen(e).(*ast.Ident); ok {
		if obj := pass.TypesInfo.Uses[id]; obj != nil {
			return obj.Type()
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() != nil && n.Obj().Pkg().Path() == "context" && n.Obj().Name() == "Context"
}

// isCancelSignal reports whether t is a receive-only struct{} channel —
// the shape of ctx.Done() and of every done-channel in the cancellation
// idiom. A goroutine watching one can observe shutdown even though it
// never touches a context.Context value.
func isCancelSignal(t types.Type) bool {
	ch, ok := t.Underlying().(*types.Chan)
	if !ok || ch.Dir() != types.RecvOnly {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

// exemptCtxCalls collects Background/TODO calls that are the RHS of the
// nil-default idiom: `param = context.Background()` where the LHS is
// itself a context-typed variable already in scope.
func exemptCtxCalls(pass *analysis.Pass, body *ast.BlockStmt) map[*ast.CallExpr]bool {
	exempt := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		id, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return true
		}
		obj := pass.TypesInfo.Uses[id]
		if obj == nil || !isContextType(obj.Type()) {
			return true
		}
		if call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr); ok && isCtxMint(pass, call) != "" {
			exempt[call] = true
		}
		return true
	})
	return exempt
}

// isCtxMint resolves calls to context.Background / context.TODO,
// returning the called name or "".
func isCtxMint(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if fn.Name() == "Background" || fn.Name() == "TODO" {
		return fn.Name()
	}
	return ""
}

// ctxWalk walks one declaration, tracking the stack of context-typed
// parameters in scope as it descends into function literals.
type ctxWalk struct {
	pass   *analysis.Pass
	exempt map[*ast.CallExpr]bool
}

// walkFunc analyzes one function layer. scope carries the context
// parameters of the enclosing layers; the layer's own are appended.
func (cw *ctxWalk) walkFunc(ft *ast.FuncType, body *ast.BlockStmt, scope []types.Object) {
	scope = append(scope, cw.ctxParams(ft)...)
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			cw.walkFunc(n.Type, n.Body, scope)
			return false
		case *ast.GoStmt:
			cw.checkGoStmt(n, scope)
			if lit, ok := ast.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
				cw.walkFunc(lit.Type, lit.Body, scope)
				for _, arg := range n.Call.Args {
					ast.Inspect(arg, func(a ast.Node) bool {
						if l, ok := a.(*ast.FuncLit); ok {
							cw.walkFunc(l.Type, l.Body, scope)
							return false
						}
						return true
					})
				}
				return false
			}
			return true
		case *ast.CallExpr:
			if name := isCtxMint(cw.pass, n); name != "" && len(scope) > 0 && !cw.exempt[n] {
				cw.pass.Reportf(n.Pos(),
					"context.%s() severs the context chain: parameter %s is in scope; thread it instead",
					name, scope[len(scope)-1].Name())
			}
		}
		return true
	})
}

// ctxParams extracts the context-typed parameter objects of a function
// type.
func (cw *ctxWalk) ctxParams(ft *ast.FuncType) []types.Object {
	var out []types.Object
	if ft == nil || ft.Params == nil {
		return out
	}
	for _, field := range ft.Params.List {
		for _, name := range field.Names {
			if obj := cw.pass.TypesInfo.Defs[name]; obj != nil && isContextType(obj.Type()) {
				out = append(out, obj)
			}
		}
	}
	return out
}

// checkGoStmt flags `go func(){...}()` goroutines that can never
// observe cancellation: launched where a context is in scope, yet the
// literal neither captures nor receives a context-typed value or a
// cancellation signal (a receive-only struct{} channel like
// ctx.Done()). Method and named-function goroutines are out of scope —
// their context plumbing is their own signature's business.
func (cw *ctxWalk) checkGoStmt(g *ast.GoStmt, scope []types.Object) {
	if len(scope) == 0 {
		return
	}
	lit, ok := ast.Unparen(g.Call.Fun).(*ast.FuncLit)
	if !ok {
		return
	}
	for _, arg := range g.Call.Args {
		if t := typeOf(cw.pass, arg); t != nil && (isContextType(t) || isCancelSignal(t)) {
			return
		}
	}
	sees := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if sees {
			return false
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := cw.pass.TypesInfo.Uses[id]; obj != nil && (isContextType(obj.Type()) || isCancelSignal(obj.Type())) {
				sees = true
			}
		}
		return true
	})
	if !sees {
		cw.pass.Reportf(g.Pos(),
			"goroutine cannot observe cancellation: %s is in scope but the literal neither captures nor receives a context",
			scope[len(scope)-1].Name())
	}
}
