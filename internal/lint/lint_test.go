package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// lintSource writes the sources into a temp tree and runs both
// analyzers over it; keys are paths relative to the tree root.
func lintSource(t *testing.T, files map[string]string) []Finding {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	findings, err := Run([]string{dir + "/..."}, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	return findings
}

func onlyAnalyzer(findings []Finding, name string) []Finding {
	var out []Finding
	for _, f := range findings {
		if f.Analyzer == name {
			out = append(out, f)
		}
	}
	return out
}

func TestMustcheck(t *testing.T) {
	findings := lintSource(t, map[string]string{
		"pkg/a.go": `package pkg

import "tiling3d/internal/cache"

func build() *cache.Hierarchy {
	return cache.MustHierarchy() // finding: production code
}

// MustBuild is a Must* wrapper: the sanctioned home of a Must* call.
func MustBuild() *cache.Hierarchy {
	return cache.MustHierarchy()
}

func allowed() *cache.Hierarchy {
	return cache.MustHierarchy() //lint:allow mustcheck -- test fixture
}

func allowedAbove() *cache.Hierarchy {
	//lint:allow mustcheck -- validated by caller
	return cache.MustHierarchy()
}

func mustang() { mustard() } // lowercase and non-Must names don't match
func mustard() {}
`,
		"pkg/a_test.go": `package pkg

import "tiling3d/internal/cache"

func helper() *cache.Hierarchy { return cache.MustHierarchy() }
`,
		"examples/demo/main.go": `package main

import "tiling3d/internal/cache"

func main() { _ = cache.MustHierarchy() }
`,
	})
	got := onlyAnalyzer(findings, "mustcheck")
	if len(got) != 1 {
		t.Fatalf("findings = %v, want exactly the one unannotated production call", got)
	}
	f := got[0]
	if !strings.HasSuffix(f.Pos.Filename, "pkg/a.go") || f.Pos.Line != 6 {
		t.Errorf("finding at %s:%d", f.Pos.Filename, f.Pos.Line)
	}
	if !strings.Contains(f.Message, "MustHierarchy") {
		t.Errorf("message = %q", f.Message)
	}
	if !strings.Contains(f.String(), "[mustcheck]") {
		t.Errorf("String = %q", f.String())
	}
}

func TestRawindex(t *testing.T) {
	findings := lintSource(t, map[string]string{
		"pkg/b.go": `package pkg

type Grid struct {
	Data       []float64
	NI, NJ, DI int
}

func (g *Grid) Index(i, j int) int { return j*g.DI + i }

func bad(g *Grid, i, j int) float64 {
	return g.Data[j*g.NI+i] // finding: hand-rolled stride
}

func good(g *Grid, i, j int) float64 {
	return g.Data[g.Index(i, j)]
}

func hoisted(g *Grid, i, row int) float64 {
	return g.Data[row+i]
}

func slice(g *Grid, j int) []float64 {
	return g.Data[j*g.NI : (j+1)*g.NI] // slicing a plane is the sanctioned bulk idiom
}

func allowed(g *Grid, i, j int) float64 {
	return g.Data[j*g.NI+i] //lint:allow rawindex -- probing raw layout on purpose
}

func accessor(g *Grid, i, j int) float64 {
	return g.Index(i*2, j) // Index() args may multiply freely
}
`,
	})
	got := onlyAnalyzer(findings, "rawindex")
	if len(got) != 1 {
		t.Fatalf("findings = %v, want exactly the one raw stride index", got)
	}
	if got[0].Pos.Line != 11 || !strings.Contains(got[0].Message, "g.Data") {
		t.Errorf("finding = %+v", got[0])
	}
}

// TestRepoIsClean is the in-test mirror of the CI gate: the tree itself
// must lint clean (findings are either fixed or annotated).
func TestRepoIsClean(t *testing.T) {
	findings, err := Run([]string{"../..." /* internal/ */, "../../cmd/...", "../../tiling3d.go"}, Analyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f)
	}
}
