package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"tiling3d/internal/lint/analysis"
	"tiling3d/internal/lint/cfg"
)

// Settle is the flow-sensitive acquire/release analyzer: every call to
// an acquire function declared with `//lint:pair settle=...` (a breaker
// probe claim, a singleflight flight, a pool slot) must reach one of
// its settle calls on every path to the function's exit, and — for
// pairs marked panicguard — must survive a panic unwinding through the
// region (the settle has to be deferred before any call that can
// panic). time.NewTimer and time.AfterFunc are built-in pairs: a
// watchdog timer must be stopped.
//
// The claim is guard-aware: when the acquire returns a bool, only paths
// where that bool is true carry the claim (`if !b.Allow() { return }`
// claims nothing on the early return); when its last result is an
// error, only nil-error paths do. Paths ending in an explicit panic,
// os.Exit, or log.Fatal are assertions, not leaks. Function literals
// are separate scopes: an acquire settled only by a sibling goroutine
// needs a //lint:allow with its justification.
var Settle = &analysis.Analyzer{
	Name: "settle",
	Doc:  "acquired resources (breaker probes, singleflight entries, pool slots, watchdog timers) must settle on all paths",
	Run:  runSettle,
}

// builtinTimerPair matches time.NewTimer / time.AfterFunc.
func builtinTimerPair(fn *types.Func) (analysis.PairSpec, bool) {
	if fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "time" &&
		(fn.Name() == "NewTimer" || fn.Name() == "AfterFunc") {
		return analysis.PairSpec{Settles: []string{"Stop"}}, true
	}
	return analysis.PairSpec{}, false
}

func runSettle(pass *analysis.Pass) (interface{}, error) {
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			settleScope(pass, fd.Body)
		}
	}
	return nil, nil
}

// settleScope analyzes one function scope (a declared body or a
// function literal) and recurses into nested literals as their own
// scopes.
func settleScope(pass *analysis.Pass, body *ast.BlockStmt) {
	var acquires []*acquireSite
	var nested []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			nested = append(nested, lit)
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if site := classifyAcquire(pass, call); site != nil {
				acquires = append(acquires, site)
			}
		}
		return true
	})
	if len(acquires) > 0 {
		g := cfg.New(body)
		for _, site := range acquires {
			checkAcquire(pass, g, body, site)
		}
	}
	for _, lit := range nested {
		settleScope(pass, lit.Body)
	}
}

// acquireSite is one acquire call with its resolved pair invariant.
type acquireSite struct {
	call *ast.CallExpr
	fn   *types.Func
	spec analysis.PairSpec
	// recv is the acquirer's receiver named type for receiver-mode
	// settles (settle = same-named method on the same type); nil for
	// result-mode (settle = method on the value the acquire returned).
	recv *types.Named
	// tracked is the local object bound to the acquire's result in
	// result mode.
	tracked types.Object
	// guard describes the conditional claim, if any.
	guard guardInfo
	// name renders in diagnostics.
	name string
}

// guardInfo describes which branch of a condition carries the claim.
type guardInfo struct {
	// obj is the bool/error result object the claim hangs on; nil when
	// the claim hangs directly on the call expression in an if
	// condition, or when the claim is unconditional.
	obj types.Object
	// call is the acquire call itself when it appears directly in a
	// condition.
	call *ast.CallExpr
	// kind is "bool" (claim when true), "err" (claim when nil), or ""
	// (unconditional).
	kind string
}

func (g guardInfo) conditional() bool { return g.kind != "" }

// classifyAcquire resolves a call against the pair index.
func classifyAcquire(pass *analysis.Pass, call *ast.CallExpr) *acquireSite {
	fn := calleeFunc(pass, call)
	if fn == nil {
		return nil
	}
	spec, ok := pass.Facts.PairFor(fn)
	if !ok {
		spec, ok = builtinTimerPair(fn)
	}
	if !ok {
		return nil
	}
	site := &acquireSite{call: call, fn: fn, spec: spec, name: acquireName(fn)}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		site.recv = namedRecv(sig.Recv().Type())
	}
	return site
}

// calleeFunc resolves the called *types.Func, nil for calls through
// values, conversions, or untyped code.
func calleeFunc(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

func namedRecv(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

func acquireName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedRecv(sig.Recv().Type()); n != nil {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}

// checkAcquire runs the dataflow for one acquire site.
func checkAcquire(pass *analysis.Pass, g *cfg.Graph, body *ast.BlockStmt, site *acquireSite) {
	// Locate the CFG node carrying the acquire.
	blk, idx := findNode(g, site.call)
	if blk == nil {
		return
	}
	node := blk.Nodes[idx]

	// Resolve how the results are consumed: guards, tracked handles,
	// escapes.
	switch owner := node.(type) {
	case *ast.AssignStmt:
		if !resolveAssign(pass, site, owner) {
			return // result escapes into a field/arg; not ours to prove
		}
	case *ast.ExprStmt:
		if site.recv == nil {
			// A discarded handle can never settle.
			pass.Reportf(site.call.Pos(), "result of %s is discarded; keep the returned value and settle it with %s",
				site.name, strings.Join(site.spec.Settles, "/"))
			return
		}
	default:
		// The call sits inside a condition, a return, a composite
		// literal, or an argument. Direct if-condition claims are
		// guardable; everything else escapes.
		if cond, okNeg := enclosingCond(node, site.call); cond {
			site.guard = guardInfo{call: site.call, kind: "bool"}
			_ = okNeg
		} else if site.recv == nil {
			return // handle escapes (returned, passed on)
		}
	}

	w := &settleWalk{pass: pass, g: g, site: site, visited: map[walkKey]bool{}}
	state := claimState{claim: claimActive}
	if site.guard.conditional() {
		state.claim = claimConditional
	}
	w.walkFrom(blk, idx+1, state)
	w.report()
}

// resolveAssign inspects `lhs... := acquire(...)`: binds the guard
// variable (bool result, or trailing error) and the tracked handle for
// result-mode pairs. Returns false when the handle escapes analysis.
func resolveAssign(pass *analysis.Pass, site *acquireSite, as *ast.AssignStmt) bool {
	if len(as.Rhs) != 1 || ast.Unparen(as.Rhs[0]) != site.call {
		return site.recv != nil
	}
	sig, _ := site.fn.Type().(*types.Signature)
	if sig == nil {
		return site.recv != nil
	}
	results := sig.Results()
	objOf := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok {
			return nil
		}
		if obj := pass.TypesInfo.Defs[id]; obj != nil {
			return obj
		}
		return pass.TypesInfo.Uses[id]
	}
	// Guard: first bool result wins, else a trailing error.
	if len(as.Lhs) == results.Len() {
		for i := 0; i < results.Len(); i++ {
			if isBool(results.At(i).Type()) {
				if obj := objOf(as.Lhs[i]); obj != nil {
					site.guard = guardInfo{obj: obj, kind: "bool"}
				}
				break
			}
		}
		if !site.guard.conditional() {
			if last := results.Len() - 1; last >= 0 && isError(results.At(last).Type()) {
				if obj := objOf(as.Lhs[last]); obj != nil {
					site.guard = guardInfo{obj: obj, kind: "err"}
				}
			}
		}
	}
	if site.recv != nil {
		return true
	}
	// Result mode: track the handle (the first non-bool, non-error
	// result). A blank or non-ident destination escapes the analysis —
	// except blank, which can never settle.
	handleIdx := 0
	for i := 0; i < results.Len(); i++ {
		if !isBool(results.At(i).Type()) && !isError(results.At(i).Type()) {
			handleIdx = i
			break
		}
	}
	if len(as.Lhs) <= handleIdx {
		return false
	}
	id, ok := as.Lhs[handleIdx].(*ast.Ident)
	if !ok {
		return false // stored into a field or index: escapes
	}
	if id.Name == "_" {
		pass.Reportf(site.call.Pos(), "result of %s is discarded; keep the returned value and settle it with %s",
			site.name, strings.Join(site.spec.Settles, "/"))
		return false
	}
	site.tracked = objOf(id)
	return site.tracked != nil
}

func isBool(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Bool
}

func isError(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Pkg() == nil && n.Obj().Name() == "error"
}

// enclosingCond reports whether the call is (possibly negated) the
// whole condition it appears in — i.e. the claim hangs directly on the
// call's boolean value.
func enclosingCond(owner ast.Node, call *ast.CallExpr) (isCond, negated bool) {
	e, ok := owner.(ast.Expr)
	if !ok {
		return false, false
	}
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		e = ast.Unparen(u.X)
		negated = true
	}
	return e == call, negated
}

// findNode locates the block and node index containing the expression.
func findNode(g *cfg.Graph, target ast.Expr) (*cfg.Block, int) {
	for _, blk := range g.Blocks {
		for i, n := range blk.Nodes {
			found := false
			ast.Inspect(n, func(x ast.Node) bool {
				if x == target {
					found = true
				}
				return !found
			})
			if found {
				return blk, i
			}
		}
	}
	return nil, -1
}

// claimState is the dataflow lattice position along one path.
type claimState struct {
	claim int // claimDead, claimConditional, claimActive
	// deferredSettle records that a settle has been deferred: every
	// later exit — normal or panicking — settles.
	deferredSettle bool
}

const (
	claimDead = iota
	claimConditional
	claimActive
)

type walkKey struct {
	blk   *cfg.Block
	state claimState
}

// settleWalk is the DFS over the CFG for one acquire.
type settleWalk struct {
	pass    *analysis.Pass
	g       *cfg.Graph
	site    *acquireSite
	visited map[walkKey]bool

	leakLine      int // first exit line reached with an unsettled claim
	panicLeakLine int // first may-panic call line with no deferred settle
}

func (w *settleWalk) report() {
	if w.leakLine > 0 {
		w.pass.Reportf(w.site.call.Pos(),
			"acquire %s is not settled on the path reaching line %d: need a call to %s on every path",
			w.site.name, w.leakLine, strings.Join(w.site.spec.Settles, "/"))
	}
	if w.panicLeakLine > 0 && w.site.spec.PanicGuard {
		w.pass.Reportf(w.site.call.Pos(),
			"acquire %s is not panic-safe: the call at line %d can panic before the settle; defer the %s",
			w.site.name, w.panicLeakLine, strings.Join(w.site.spec.Settles, "/"))
	}
}

// walkFrom scans blk starting at node index from with the given state.
func (w *settleWalk) walkFrom(blk *cfg.Block, from int, state claimState) {
	if from == 0 {
		key := walkKey{blk, state}
		if w.visited[key] {
			return
		}
		w.visited[key] = true
	}
	for i := from; i < len(blk.Nodes); i++ {
		n := blk.Nodes[i]
		switch s := w.scanNode(n, &state); s {
		case scanSettled:
			return
		case scanReturn:
			if state.claim != claimDead && !state.deferredSettle {
				w.noteLeak(w.pass.Position(n.Pos()).Line)
			}
			return
		}
	}
	for _, e := range blk.Succs {
		next := state
		if e.Cond != nil && state.claim == claimConditional {
			switch w.resolveGuardEdge(e) {
			case +1:
				next.claim = claimActive
			case -1:
				next.claim = claimDead
			}
		}
		if e.To == w.g.Exit {
			if e.Panic {
				continue // explicit assertion path
			}
			if next.claim != claimDead && !next.deferredSettle {
				w.noteLeak(w.lineOfBlockEnd(blk))
			}
			continue
		}
		w.walkFrom(e.To, 0, next)
	}
}

func (w *settleWalk) noteLeak(line int) {
	if w.leakLine == 0 || line < w.leakLine {
		w.leakLine = line
	}
}

func (w *settleWalk) lineOfBlockEnd(blk *cfg.Block) int {
	if n := len(blk.Nodes); n > 0 {
		return w.pass.Position(blk.Nodes[n-1].End()).Line
	}
	return w.pass.Position(w.site.call.Pos()).Line
}

// resolveGuardEdge maps a conditional edge to the claim outcome:
// +1 claim holds, -1 claim dead, 0 unrelated condition.
func (w *settleWalk) resolveGuardEdge(e cfg.Edge) int {
	cond := ast.Unparen(e.Cond)
	val := e.Val
	if u, ok := cond.(*ast.UnaryExpr); ok && u.Op == token.NOT {
		cond = ast.Unparen(u.X)
		val = !val
	}
	g := w.site.guard
	switch g.kind {
	case "bool":
		if g.call != nil && cond == g.call {
			if val {
				return +1
			}
			return -1
		}
		if id, ok := cond.(*ast.Ident); ok && g.obj != nil && w.pass.TypesInfo.Uses[id] == g.obj {
			if val {
				return +1
			}
			return -1
		}
	case "err":
		b, ok := cond.(*ast.BinaryExpr)
		if !ok || (b.Op != token.NEQ && b.Op != token.EQL) {
			return 0
		}
		id, nilSide := guardNilCompare(b)
		if id == nil || !nilSide || g.obj == nil || w.pass.TypesInfo.Uses[id] != g.obj {
			return 0
		}
		// err != nil true → claim dead; err == nil true → claim holds.
		errNonNil := (b.Op == token.NEQ) == val
		if errNonNil {
			return -1
		}
		return +1
	}
	return 0
}

// guardNilCompare extracts `<ident> op nil` in either order.
func guardNilCompare(b *ast.BinaryExpr) (*ast.Ident, bool) {
	if id, ok := ast.Unparen(b.X).(*ast.Ident); ok && isNilIdent(b.Y) {
		return id, true
	}
	if id, ok := ast.Unparen(b.Y).(*ast.Ident); ok && isNilIdent(b.X) {
		return id, true
	}
	return nil, false
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

const (
	scanContinue = iota
	scanSettled
	scanReturn
)

// scanNode processes one CFG node: settles, defers, may-panic calls,
// returns.
func (w *settleWalk) scanNode(n ast.Node, state *claimState) int {
	if _, ok := n.(*ast.ReturnStmt); ok {
		if w.nodeSettles(n, false) {
			return scanSettled
		}
		return scanReturn
	}
	if d, ok := n.(*ast.DeferStmt); ok {
		if w.nodeSettles(d, true) {
			state.deferredSettle = true
			return scanSettled
		}
		return scanContinue
	}
	if w.nodeSettles(n, false) {
		return scanSettled
	}
	if w.site.spec.PanicGuard && state.claim != claimDead && !state.deferredSettle {
		if line := w.mayPanicLine(n); line > 0 && w.panicLeakLine == 0 {
			w.panicLeakLine = line
		}
	}
	return scanContinue
}

// nodeSettles reports whether the node contains a settle call for the
// site. Function literals are descended only when immediately invoked
// or when the node is a defer (whose body runs at exit); goroutine
// bodies never count — concurrent settlement is not an ordering
// guarantee.
func (w *settleWalk) nodeSettles(n ast.Node, inDefer bool) bool {
	found := false
	var visit func(ast.Node) bool
	visit = func(x ast.Node) bool {
		if found || x == nil {
			return false
		}
		switch x := x.(type) {
		case *ast.GoStmt:
			return false
		case *ast.FuncLit:
			if !inDefer {
				return false
			}
			return true
		case *ast.CallExpr:
			if w.isSettleCall(x) {
				found = true
				return false
			}
			// Descend into immediately-invoked literals.
			if lit, ok := ast.Unparen(x.Fun).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, visit)
			}
		}
		return true
	}
	ast.Inspect(n, visit)
	return found
}

func (w *settleWalk) isSettleCall(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		// Same-package settle function called unqualified.
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok {
			return false
		}
		fn, _ := w.pass.TypesInfo.Uses[id].(*types.Func)
		return fn != nil && w.settleName(fn.Name()) && w.site.recv == nil
	}
	fn, _ := w.pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if fn == nil || !w.settleName(fn.Name()) {
		return false
	}
	if w.site.recv != nil {
		sig, _ := fn.Type().(*types.Signature)
		return sig != nil && sig.Recv() != nil && namedRecv(sig.Recv().Type()) == w.site.recv
	}
	// Result mode: the receiver must be the tracked handle.
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	return ok && w.site.tracked != nil && w.pass.TypesInfo.Uses[id] == w.site.tracked
}

func (w *settleWalk) settleName(name string) bool {
	for _, s := range w.site.spec.Settles {
		if s == name {
			return true
		}
	}
	return false
}

// mayPanicLine returns the line of the first call in the node that can
// plausibly panic: any non-builtin call other than the acquire and its
// settles. Non-invoked function literals don't run here and are
// skipped.
func (w *settleWalk) mayPanicLine(n ast.Node) int {
	line := 0
	var visit func(ast.Node) bool
	visit = func(x ast.Node) bool {
		if line > 0 || x == nil {
			return false
		}
		switch x := x.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if x == w.site.call || w.isSettleCall(x) || isCalmCall(w.pass, x) {
				return true
			}
			line = w.pass.Position(x.Pos()).Line
			return false
		}
		return true
	}
	ast.Inspect(n, visit)
	return line
}

// isCalmCall reports calls that cannot panic for our purposes:
// builtins (len, cap, append, ...) and type conversions.
func isCalmCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := pass.TypesInfo.Uses[fun].(type) {
		case *types.Builtin:
			return true
		case *types.TypeName:
			return true
		case nil:
			_ = obj
			// Untyped code: assume a real call.
			return false
		}
	case *ast.SelectorExpr:
		if _, ok := pass.TypesInfo.Uses[fun.Sel].(*types.TypeName); ok {
			return true
		}
	}
	return false
}
