package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tiling3d/internal/lint/analysis"
)

// Finding is one unsuppressed diagnostic, ready for display.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzers returns the repo's analyzer set.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{Mustcheck, Rawindex}
}

// Run lints the Go files matched by the patterns (a directory, a file,
// or a `dir/...` tree pattern) with the given analyzers, returning the
// findings that survive //lint:allow suppression, sorted by position.
func Run(patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	files, err := collectFiles(patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var parsed []*ast.File
	for _, path := range files {
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		parsed = append(parsed, f)
	}
	allow := buildAllowIndex(fset, parsed)

	var findings []Finding
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer: a,
			Fset:     fset,
			Files:    parsed,
			Report: func(d analysis.Diagnostic) {
				pos := fset.Position(d.Pos)
				if allow.allows(a.Name, pos) {
					return
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			},
		}
		if _, err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", a.Name, err)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// collectFiles expands the patterns into a deduplicated list of .go
// files. `dir/...` walks the tree (skipping hidden directories);
// anything else is a file or a single directory.
func collectFiles(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var out []string
	add := func(path string) {
		if !seen[path] {
			seen[path] = true
			out = append(out, path)
		}
	}
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "/..."); ok {
			if root == "" || root == "." {
				root = "."
			}
			err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					if name := d.Name(); name != "." && strings.HasPrefix(name, ".") {
						return filepath.SkipDir
					}
					return nil
				}
				if strings.HasSuffix(path, ".go") {
					add(path)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		info, err := os.Stat(pat)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", pat, err)
		}
		if info.IsDir() {
			entries, err := os.ReadDir(pat)
			if err != nil {
				return nil, err
			}
			for _, e := range entries {
				if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
					add(filepath.Join(pat, e.Name()))
				}
			}
			continue
		}
		add(pat)
	}
	sort.Strings(out)
	return out, nil
}

// allowIndex records, per file, the lines carrying //lint:allow
// comments for each analyzer.
type allowIndex map[string]map[int]map[string]bool

// allows reports whether a finding at pos is suppressed: an allow
// comment for the analyzer on the same line or the line above.
func (ai allowIndex) allows(analyzer string, pos token.Position) bool {
	lines := ai[pos.Filename]
	if lines == nil {
		return false
	}
	return lines[pos.Line][analyzer] || lines[pos.Line-1][analyzer]
}

func buildAllowIndex(fset *token.FileSet, files []*ast.File) allowIndex {
	ai := allowIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				rest, ok := strings.CutPrefix(text, "lint:allow")
				if !ok {
					continue
				}
				// Anything after "--" is the human justification.
				rest, _, _ = strings.Cut(rest, "--")
				pos := fset.Position(c.Pos())
				byLine := ai[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					ai[pos.Filename] = byLine
				}
				byAnalyzer := byLine[pos.Line]
				if byAnalyzer == nil {
					byAnalyzer = map[string]bool{}
					byLine[pos.Line] = byAnalyzer
				}
				for _, name := range strings.Fields(rest) {
					byAnalyzer[name] = true
				}
			}
		}
	}
	return ai
}
