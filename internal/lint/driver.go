package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"tiling3d/internal/lint/analysis"
)

// Finding is one unsuppressed diagnostic, ready for display.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"-"`
	Message  string         `json:"message"`
	// Flattened position for -json output.
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// AllowAnalyzerName is the pseudo-analyzer the driver reports
// //lint:allow hygiene under: missing justifications and stale
// (nothing-suppressed) annotations. Driver findings cannot themselves
// be suppressed.
const AllowAnalyzerName = "allow"

// Analyzers returns the repo's analyzer set: the two original syntactic
// analyzers plus the four flow-sensitive ones added with the settlement
// suite.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{Mustcheck, Rawindex, Settle, Atomicwrite, Ctxflow, Degrademark}
}

// runUnit is one package directory scheduled for analysis.
type runUnit struct {
	dir       string
	pkg       *pkgUnit    // typed non-test unit (may be nil on load error)
	testFiles []*ast.File // parsed _test.go files (never type-checked)
	// only restricts reported findings (and allow hygiene) to these
	// base names; empty means the whole directory.
	only map[string]bool
}

func (u *runUnit) includes(filename string) bool {
	if len(u.only) == 0 {
		return true
	}
	return u.only[filepath.Base(filename)]
}

// Run lints the Go packages matched by the patterns (a directory, a
// file, or a `dir/...` tree pattern; testdata and hidden directories
// are skipped in tree walks) with the given analyzers. Packages are
// loaded and type-checked — module-internal imports from source, the
// standard library through go/importer — before per-package passes run,
// so analyzers see go/types information and the annotation facts
// (//lint:pair, //lint:fallback, //lint:persist) declared anywhere in
// the module. Findings that survive //lint:allow suppression come back
// sorted by position, together with the driver's own allow-hygiene
// findings (missing `-- reason` justifications, stale allows that
// suppressed nothing).
func Run(patterns []string, analyzers []*analysis.Analyzer) ([]Finding, error) {
	l := sharedLoader
	l.registerModuleFor(".")

	units, err := collectUnits(l, patterns)
	if err != nil {
		return nil, err
	}
	for _, u := range units {
		pkg, err := l.load(u.dir, l.importPathFor(u.dir))
		if err != nil {
			return nil, err
		}
		u.pkg = pkg
		if err := parseTestFiles(l, u); err != nil {
			return nil, err
		}
	}

	allow := buildAllowIndex(l.fset, unitFiles(units))

	var findings []Finding
	report := func(u *runUnit, name string, d analysis.Diagnostic) {
		pos := l.fset.Position(d.Pos)
		if allow.allows(name, pos) {
			return
		}
		if !u.includes(pos.Filename) {
			return
		}
		findings = append(findings, Finding{
			Analyzer: name, Pos: pos, Message: d.Message,
			File: pos.Filename, Line: pos.Line, Col: pos.Column,
		})
	}
	for _, a := range analyzers {
		for _, u := range units {
			a, u := a, u
			pass := &analysis.Pass{
				Analyzer:   a,
				Fset:       l.fset,
				Files:      append(append([]*ast.File{}, u.pkg.files...), u.testFiles...),
				Pkg:        u.pkg.pkg,
				TypesInfo:  u.pkg.info,
				TypeErrors: u.pkg.errs,
				Facts:      l.facts,
				Persist:    u.pkg.persist,
				Report:     func(d analysis.Diagnostic) { report(u, a.Name, d) },
			}
			if _, err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("lint: %s: %w", a.Name, err)
			}
		}
	}
	findings = append(findings, allowHygiene(allow, analyzers, units)...)

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}

// collectUnits expands the patterns into package units. `dir/...` walks
// the tree (skipping hidden and testdata directories); a plain
// directory is one unit; a file restricts its directory's unit to that
// file.
func collectUnits(l *loader, patterns []string) ([]*runUnit, error) {
	byDir := map[string]*runUnit{}
	var order []*runUnit
	addDir := func(dir string, only string) *runUnit {
		abs, err := filepath.Abs(dir)
		if err != nil {
			abs = dir
		}
		u := byDir[abs]
		if u == nil {
			u = &runUnit{dir: dir}
			if only != "" {
				u.only = map[string]bool{}
			}
			byDir[abs] = u
			order = append(order, u)
		}
		switch {
		case only == "":
			u.only = nil
		case u.only != nil:
			u.only[only] = true
		}
		return u
	}
	for _, pat := range patterns {
		if root, ok := strings.CutSuffix(pat, "/..."); ok {
			if root == "" || root == "." {
				root = "."
			}
			l.registerModuleFor(root)
			seen := map[string]bool{}
			err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if d.IsDir() {
					name := d.Name()
					if name != "." && (strings.HasPrefix(name, ".") || name == "testdata") {
						return filepath.SkipDir
					}
					return nil
				}
				if strings.HasSuffix(path, ".go") {
					dir := filepath.Dir(path)
					if !seen[dir] {
						seen[dir] = true
						addDir(dir, "")
					}
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			continue
		}
		info, err := os.Stat(pat)
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", pat, err)
		}
		if info.IsDir() {
			l.registerModuleFor(pat)
			addDir(pat, "")
			continue
		}
		l.registerModuleFor(filepath.Dir(pat))
		addDir(filepath.Dir(pat), filepath.Base(pat))
	}
	return order, nil
}

// parseTestFiles parses the _test.go files of the unit's directory
// (package-name agnostic: in-package and external test files alike).
// They join the pass's Files without type information.
func parseTestFiles(l *loader, u *runUnit) error {
	entries, err := os.ReadDir(u.dir)
	if err != nil {
		return err
	}
	var names []string
	for _, e := range entries {
		if n := e.Name(); !e.IsDir() && strings.HasSuffix(n, "_test.go") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(u.dir, n), nil, parser.ParseComments)
		if err != nil {
			return err
		}
		u.testFiles = append(u.testFiles, f)
	}
	return nil
}

func unitFiles(units []*runUnit) []*ast.File {
	var out []*ast.File
	for _, u := range units {
		out = append(out, u.pkg.files...)
		out = append(out, u.testFiles...)
	}
	return out
}

// allowEntry is one //lint:allow comment.
type allowEntry struct {
	pos    token.Position
	names  []string
	reason string
	hits   map[string]int
}

// allowIndex records, per file and line, the //lint:allow entries.
type allowIndex struct {
	byLine map[string]map[int][]*allowEntry
	all    []*allowEntry
}

// allows reports whether a finding at pos is suppressed: an allow
// comment naming the analyzer on the same line or the line above. A
// match is recorded on the entry so the driver can flag stale allows.
func (ai *allowIndex) allows(analyzer string, pos token.Position) bool {
	lines := ai.byLine[pos.Filename]
	if lines == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, e := range lines[line] {
			for _, n := range e.names {
				if n == analyzer {
					e.hits[analyzer]++
					return true
				}
			}
		}
	}
	return false
}

func buildAllowIndex(fset *token.FileSet, files []*ast.File) *allowIndex {
	ai := &allowIndex{byLine: map[string]map[int][]*allowEntry{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				rest, ok := strings.CutPrefix(text, "lint:allow")
				if !ok {
					continue
				}
				// Anything after an embedded `//` is commentary (the
				// golden tests put their expectations there), not part
				// of the directive.
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				names, reason, _ := strings.Cut(rest, "--")
				e := &allowEntry{
					pos:    fset.Position(c.Pos()),
					names:  strings.Fields(names),
					reason: strings.TrimSpace(reason),
					hits:   map[string]int{},
				}
				byLine := ai.byLine[e.pos.Filename]
				if byLine == nil {
					byLine = map[int][]*allowEntry{}
					ai.byLine[e.pos.Filename] = byLine
				}
				byLine[e.pos.Line] = append(byLine[e.pos.Line], e)
				ai.all = append(ai.all, e)
			}
		}
	}
	return ai
}

// allowHygiene audits the allow annotations themselves: every allow
// must name at least one analyzer, carry a non-empty `-- reason`
// justification, and actually suppress something for each analyzer it
// names (judged only for analyzers that ran; a stale allow is one that
// would silently rot into a blanket exemption).
func allowHygiene(ai *allowIndex, analyzers []*analysis.Analyzer, units []*runUnit) []Finding {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	// Judge only entries in files the caller asked about (a single-file
	// pattern must not audit its siblings).
	included := func(filename string) bool {
		for _, u := range units {
			dir, err := filepath.Abs(u.dir)
			fdir, ferr := filepath.Abs(filepath.Dir(filename))
			if err == nil && ferr == nil && dir == fdir && u.includes(filename) {
				return true
			}
		}
		return false
	}
	var out []Finding
	add := func(e *allowEntry, msg string) {
		out = append(out, Finding{
			Analyzer: AllowAnalyzerName, Pos: e.pos, Message: msg,
			File: e.pos.Filename, Line: e.pos.Line, Col: e.pos.Column,
		})
	}
	for _, e := range ai.all {
		if !included(e.pos.Filename) {
			continue
		}
		if len(e.names) == 0 {
			add(e, "lint:allow names no analyzer (write `//lint:allow <analyzer> -- reason`)")
			continue
		}
		if e.reason == "" {
			add(e, fmt.Sprintf("lint:allow %s has no justification (append `-- reason`)", strings.Join(e.names, " ")))
		}
		for _, n := range e.names {
			if ran[n] && e.hits[n] == 0 {
				add(e, fmt.Sprintf("stale lint:allow %s: it suppresses nothing (remove it or fix the annotation placement)", n))
			}
		}
	}
	return out
}
