package lint

import (
	"go/ast"

	"tiling3d/internal/lint/analysis"
)

// Atomicwrite guards the durability protocol of packages that own
// journal, result, or cache files on disk (marked with a //lint:persist
// file comment): a crash mid-write must never leave a torn file behind,
// so every create-or-truncate write has to go through the temp-file +
// rename protocol (os.CreateTemp in the destination directory, write,
// close, os.Rename). Direct os.WriteFile, os.Create, and os.OpenFile
// with O_CREATE or O_TRUNC are flagged. Append-only opens
// (O_WRONLY|O_APPEND) are the journal's own protocol and stay legal, as
// does os.CreateTemp — the temp half of the rename dance.
var Atomicwrite = &analysis.Analyzer{
	Name: "atomicwrite",
	Doc:  "persisted packages (//lint:persist) must write files via temp+rename, not in place",
	Run:  runAtomicwrite,
}

func runAtomicwrite(pass *analysis.Pass) (interface{}, error) {
	if !pass.Persist {
		return nil, nil
	}
	for _, f := range pass.Files {
		if pass.IsTestFile(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "os" {
				return true
			}
			switch fn.Name() {
			case "WriteFile":
				pass.Reportf(call.Pos(),
					"os.WriteFile writes a persisted file in place; write to a temp file in the same directory and os.Rename it")
			case "Create":
				pass.Reportf(call.Pos(),
					"os.Create truncates a persisted file in place; use os.CreateTemp and os.Rename")
			case "OpenFile":
				if len(call.Args) >= 2 && flagsCreateOrTruncate(call.Args[1]) {
					pass.Reportf(call.Pos(),
						"os.OpenFile with O_CREATE/O_TRUNC rewrites a persisted file in place; use os.CreateTemp and os.Rename")
				}
			}
			return true
		})
	}
	return nil, nil
}

// flagsCreateOrTruncate reports whether the open-flags expression
// mentions O_CREATE or O_TRUNC. The check is syntactic over the flag
// expression (flags are invariably spelled as an or-chain of the os
// constants), which keeps it independent of platform flag values.
func flagsCreateOrTruncate(flags ast.Expr) bool {
	found := false
	ast.Inspect(flags, func(n ast.Node) bool {
		name := ""
		switch x := n.(type) {
		case *ast.Ident:
			name = x.Name
		case *ast.SelectorExpr:
			name = x.Sel.Name
		}
		if name == "O_CREATE" || name == "O_TRUNC" {
			found = true
		}
		return !found
	})
	return found
}
