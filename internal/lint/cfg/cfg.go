// Package cfg builds a small control-flow graph over Go function
// bodies for the repo's flow-sensitive analyzers. It is deliberately
// modest — a subset of golang.org/x/tools/go/cfg sized to what the
// settle and degrademark analyzers need:
//
//   - Blocks hold a flat sequence of ast.Nodes: ordinary statements
//     plus, for control statements, their evaluated parts (init
//     statements, condition expressions, range operands) in evaluation
//     order. Bodies of nested control statements live in other blocks,
//     so scanning a block never double-counts.
//   - Edges out of a conditional carry the condition expression and the
//     value it took, so a dataflow pass can split on a guard
//     (`if !ok { return }`).
//   - Explicit terminations (return, panic, os.Exit, log.Fatal*,
//     runtime.Goexit, testing Fatal*) edge to the synthetic Exit block;
//     panic-like ones mark the edge so analyzers can exempt assertion
//     paths.
//   - Labels, goto, break/continue (with labels), switch (incl. type
//     switches and fallthrough) and select are handled. Function
//     literals are NOT entered: a nested func is its own graph.
//
// Defer and go statements appear as ordinary nodes in their block;
// modeling when a deferred call runs is the analyzer's business.
package cfg

import (
	"go/ast"
	"go/token"
)

// Block is one straight-line run of evaluated nodes.
type Block struct {
	// Index is the block's position in Graph.Blocks (stable, for tests
	// and debugging).
	Index int
	// Nodes are the evaluated statements/expressions, in order.
	Nodes []ast.Node
	// Succs are the outgoing edges in source order.
	Succs []Edge
}

// Edge is one control transfer.
type Edge struct {
	To *Block
	// Cond is the condition whose outcome selects this edge (an if or
	// for condition), nil for unconditional transfers.
	Cond ast.Expr
	// Val is the value Cond took along this edge.
	Val bool
	// Panic marks a transfer to Exit caused by an explicit panic-like
	// terminator rather than a return or falling off the end.
	Panic bool
}

// Graph is the CFG of one function body.
type Graph struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// New builds the graph for a function body. A nil body yields a trivial
// entry→exit graph.
func New(body *ast.BlockStmt) *Graph {
	b := &builder{}
	b.graph = &Graph{}
	b.graph.Entry = b.newBlock()
	b.graph.Exit = b.newBlock()
	b.cur = b.graph.Entry
	if body != nil {
		b.stmtList(body.List)
	}
	b.edgeTo(b.graph.Exit) // falling off the end
	return b.graph
}

// builder carries the under-construction graph.
type builder struct {
	graph *Graph
	cur   *Block // nil when the current position is unreachable
	// breakTargets / continueTargets stack, innermost last.
	loops  []loopFrame
	labels map[string]*labelFrame
}

type loopFrame struct {
	label         string
	breakTo       *Block
	continueTo    *Block // nil for switch/select frames
	isLoop        bool
	fallthroughTo *Block // next case clause body, switch frames only
}

type labelFrame struct {
	block *Block // target of goto
	used  bool
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.graph.Blocks)}
	b.graph.Blocks = append(b.graph.Blocks, blk)
	return blk
}

// edgeTo links the current block to dst (unconditionally) and keeps the
// current position.
func (b *builder) edgeTo(dst *Block) {
	if b.cur == nil {
		return
	}
	b.cur.Succs = append(b.cur.Succs, Edge{To: dst})
}

// condEdge links the current block to dst for Cond taking val.
func (b *builder) condEdge(dst *Block, cond ast.Expr, val bool) {
	if b.cur == nil {
		return
	}
	b.cur.Succs = append(b.cur.Succs, Edge{To: dst, Cond: cond, Val: val})
}

func (b *builder) add(n ast.Node) {
	if b.cur == nil || n == nil {
		return
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

func (b *builder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s, "")
	}
}

// stmt translates one statement. label is the pending label when the
// statement is the body of a LabeledStmt (so `continue L` resolves).
func (b *builder) stmt(s ast.Stmt, label string) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)
	case *ast.IfStmt:
		b.ifStmt(s)
	case *ast.ForStmt:
		b.forStmt(s, label)
	case *ast.RangeStmt:
		b.rangeStmt(s, label)
	case *ast.SwitchStmt:
		b.switchStmt(s, label)
	case *ast.TypeSwitchStmt:
		b.typeSwitchStmt(s, label)
	case *ast.SelectStmt:
		b.selectStmt(s, label)
	case *ast.ReturnStmt:
		b.add(s)
		if b.cur != nil {
			b.cur.Succs = append(b.cur.Succs, Edge{To: b.graph.Exit})
		}
		b.cur = nil
	case *ast.BranchStmt:
		b.branchStmt(s)
	case *ast.LabeledStmt:
		b.labeledStmt(s)
	case *ast.ExprStmt:
		b.add(s)
		if isTerminalCall(s.X) {
			if b.cur != nil {
				b.cur.Succs = append(b.cur.Succs, Edge{To: b.graph.Exit, Panic: true})
			}
			b.cur = nil
		}
	default:
		// Assignments, declarations, defer, go, send, incdec, empty:
		// straight-line nodes.
		b.add(s)
	}
}

func (b *builder) ifStmt(s *ast.IfStmt) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Cond)
	head := b.cur
	then := b.newBlock()
	b.condEdge(then, s.Cond, true)
	after := b.newBlock()

	b.cur = then
	b.stmtList(s.Body.List)
	b.edgeTo(after)

	if s.Else != nil {
		els := b.newBlock()
		b.cur = head
		b.condEdge(els, s.Cond, false)
		b.cur = els
		b.stmt(s.Else, "")
		b.edgeTo(after)
	} else {
		b.cur = head
		b.condEdge(after, s.Cond, false)
	}
	b.cur = after
}

func (b *builder) forStmt(s *ast.ForStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	head := b.newBlock()
	b.edgeTo(head)
	body := b.newBlock()
	after := b.newBlock()
	post := head
	if s.Post != nil {
		post = b.newBlock()
	}

	b.cur = head
	if s.Cond != nil {
		b.add(s.Cond)
		b.condEdge(body, s.Cond, true)
		b.condEdge(after, s.Cond, false)
	} else {
		b.edgeTo(body)
	}

	b.loops = append(b.loops, loopFrame{label: label, breakTo: after, continueTo: post, isLoop: true})
	b.cur = body
	b.stmtList(s.Body.List)
	b.edgeTo(post)
	b.loops = b.loops[:len(b.loops)-1]

	if s.Post != nil {
		b.cur = post
		b.add(s.Post)
		b.edgeTo(head)
	}
	b.cur = after
}

func (b *builder) rangeStmt(s *ast.RangeStmt, label string) {
	b.add(s.X)
	head := b.newBlock()
	b.edgeTo(head)
	body := b.newBlock()
	after := b.newBlock()

	b.cur = head
	// The per-iteration assignment evaluates in the head.
	if s.Key != nil {
		b.add(s.Key)
	}
	if s.Value != nil {
		b.add(s.Value)
	}
	b.edgeTo(body)
	b.edgeTo(after)

	b.loops = append(b.loops, loopFrame{label: label, breakTo: after, continueTo: head, isLoop: true})
	b.cur = body
	b.stmtList(s.Body.List)
	b.edgeTo(head)
	b.loops = b.loops[:len(b.loops)-1]

	b.cur = after
}

func (b *builder) switchStmt(s *ast.SwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	if s.Tag != nil {
		b.add(s.Tag)
	}
	b.caseClauses(s.Body.List, label, func(cc *ast.CaseClause) ([]ast.Expr, []ast.Stmt) {
		return cc.List, cc.Body
	})
}

func (b *builder) typeSwitchStmt(s *ast.TypeSwitchStmt, label string) {
	if s.Init != nil {
		b.add(s.Init)
	}
	b.add(s.Assign)
	b.caseClauses(s.Body.List, label, func(cc *ast.CaseClause) ([]ast.Expr, []ast.Stmt) {
		return cc.List, cc.Body
	})
}

// caseClauses builds the shared switch shape: head → each clause body,
// head → after when no default clause exists, fallthrough chaining.
func (b *builder) caseClauses(clauses []ast.Stmt, label string, parts func(*ast.CaseClause) ([]ast.Expr, []ast.Stmt)) {
	head := b.cur
	after := b.newBlock()
	hasDefault := false

	// Create clause bodies first so fallthrough can see its successor.
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
	}
	for i, raw := range clauses {
		cc := raw.(*ast.CaseClause)
		exprs, stmts := parts(cc)
		if exprs == nil {
			hasDefault = true
		}
		b.cur = head
		for _, e := range exprs {
			b.add(e)
		}
		b.edgeTo(bodies[i])

		var ft *Block
		if i+1 < len(clauses) {
			ft = bodies[i+1]
		}
		b.loops = append(b.loops, loopFrame{label: label, breakTo: after, fallthroughTo: ft})
		b.cur = bodies[i]
		b.stmtList(stmts)
		b.edgeTo(after)
		b.loops = b.loops[:len(b.loops)-1]
	}
	if !hasDefault {
		b.cur = head
		b.edgeTo(after)
	}
	b.cur = after
}

func (b *builder) selectStmt(s *ast.SelectStmt, label string) {
	head := b.cur
	after := b.newBlock()
	hasDefault := false
	for _, raw := range s.Body.List {
		cc := raw.(*ast.CommClause)
		if cc.Comm == nil {
			hasDefault = true
		}
		body := b.newBlock()
		b.cur = head
		b.edgeTo(body)
		b.cur = body
		if cc.Comm != nil {
			b.add(cc.Comm)
		}
		b.loops = append(b.loops, loopFrame{label: label, breakTo: after})
		b.stmtList(cc.Body)
		b.edgeTo(after)
		b.loops = b.loops[:len(b.loops)-1]
	}
	// A select without default blocks until a case fires; there is no
	// fall-through edge. An empty select never proceeds.
	_ = hasDefault
	if len(s.Body.List) == 0 {
		b.cur = head
		b.cur = nil
	} else {
		b.cur = after
	}
}

func (b *builder) branchStmt(s *ast.BranchStmt) {
	b.add(s)
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok {
	case token.BREAK:
		for i := len(b.loops) - 1; i >= 0; i-- {
			f := b.loops[i]
			if label == "" || f.label == label {
				b.edgeTo(f.breakTo)
				break
			}
		}
	case token.CONTINUE:
		for i := len(b.loops) - 1; i >= 0; i-- {
			f := b.loops[i]
			if f.isLoop && (label == "" || f.label == label) {
				b.edgeTo(f.continueTo)
				break
			}
		}
	case token.FALLTHROUGH:
		for i := len(b.loops) - 1; i >= 0; i-- {
			if f := b.loops[i]; f.breakTo != nil {
				if f.fallthroughTo != nil {
					b.edgeTo(f.fallthroughTo)
				}
				break
			}
		}
	case token.GOTO:
		if label != "" {
			b.edgeTo(b.labelBlock(label))
		}
	}
	b.cur = nil
}

func (b *builder) labeledStmt(s *ast.LabeledStmt) {
	target := b.labelBlock(s.Label.Name)
	b.edgeTo(target)
	b.cur = target
	b.stmt(s.Stmt, s.Label.Name)
}

func (b *builder) labelBlock(name string) *Block {
	if b.labels == nil {
		b.labels = map[string]*labelFrame{}
	}
	f := b.labels[name]
	if f == nil {
		f = &labelFrame{block: b.newBlock()}
		b.labels[name] = f
	}
	return f.block
}

// isTerminalCall reports whether the expression is a call that never
// returns: panic, os.Exit, log.Fatal*, log.Panic*, runtime.Goexit, or a
// testing Fatal*/Skip* method. Purely syntactic — the analyzers using
// the CFG treat these paths as assertions, not resource escapes.
func isTerminalCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name == "panic"
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if recv, ok := fun.X.(*ast.Ident); ok {
			switch recv.Name {
			case "os":
				return name == "Exit"
			case "log":
				return name == "Fatal" || name == "Fatalf" || name == "Fatalln" ||
					name == "Panic" || name == "Panicf" || name == "Panicln"
			case "runtime":
				return name == "Goexit"
			}
		}
		switch name {
		case "Fatal", "Fatalf", "FailNow", "Skip", "Skipf", "SkipNow":
			// Conventionally *testing.T / *testing.B receivers; harmless
			// to treat as terminal elsewhere.
			return true
		}
	}
	return false
}

// ReachableWithout reports whether Exit is reachable from start without
// passing through a block for which stop returns true. It is a small
// helper shared by analyzers doing "does any path escape" queries.
func (g *Graph) ReachableWithout(start *Block, stop func(*Block) bool) bool {
	seen := make(map[*Block]bool, len(g.Blocks))
	var dfs func(*Block) bool
	dfs = func(blk *Block) bool {
		if blk == g.Exit {
			return true
		}
		if seen[blk] || stop(blk) {
			return false
		}
		seen[blk] = true
		for _, e := range blk.Succs {
			if dfs(e.To) {
				return true
			}
		}
		return false
	}
	return dfs(start)
}
