package cfg

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// build parses src as a file containing one function and returns its
// graph.
func build(t *testing.T, body string) *Graph {
	t.Helper()
	src := "package p\nfunc f() {\n" + body + "\n}\n"
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "f.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	fd := file.Decls[0].(*ast.FuncDecl)
	return New(fd.Body)
}

// exitEdges collects every edge into Exit.
func exitEdges(g *Graph) []Edge {
	var out []Edge
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.To == g.Exit {
				out = append(out, e)
			}
		}
	}
	return out
}

func TestStraightLine(t *testing.T) {
	g := build(t, "x := 1\n_ = x")
	if len(g.Entry.Nodes) != 2 {
		t.Fatalf("entry nodes = %d, want 2", len(g.Entry.Nodes))
	}
	if len(exitEdges(g)) != 1 {
		t.Fatalf("exit edges = %v, want 1", exitEdges(g))
	}
}

func TestIfCondEdges(t *testing.T) {
	g := build(t, "x := 1\nif x > 0 {\n x = 2\n} else {\n x = 3\n}\n_ = x")
	var trueEdge, falseEdge int
	for _, b := range g.Blocks {
		for _, e := range b.Succs {
			if e.Cond != nil {
				if e.Val {
					trueEdge++
				} else {
					falseEdge++
				}
			}
		}
	}
	if trueEdge != 1 || falseEdge != 1 {
		t.Fatalf("cond edges true=%d false=%d, want 1/1", trueEdge, falseEdge)
	}
}

func TestReturnCutsFlow(t *testing.T) {
	g := build(t, "if true {\n return\n}\nx := 1\n_ = x")
	// Two paths to exit: the return and falling off the end.
	if n := len(exitEdges(g)); n != 2 {
		t.Fatalf("exit edges = %d, want 2", n)
	}
}

func TestPanicEdgeMarked(t *testing.T) {
	g := build(t, "if true {\n panic(\"boom\")\n}")
	var panics int
	for _, e := range exitEdges(g) {
		if e.Panic {
			panics++
		}
	}
	if panics != 1 {
		t.Fatalf("panic edges = %d, want 1", panics)
	}
}

func TestForLoopBackEdge(t *testing.T) {
	g := build(t, "for i := 0; i < 3; i++ {\n if i == 1 {\n  break\n }\n continue\n}")
	// The graph must terminate a DFS (back edges present, no hang) and
	// reach exit.
	if !g.ReachableWithout(g.Entry, func(*Block) bool { return false }) {
		t.Fatal("exit unreachable")
	}
}

func TestSwitchDefaultAndFallthrough(t *testing.T) {
	g := build(t, "x := 1\nswitch x {\ncase 1:\n x = 2\n fallthrough\ncase 2:\n x = 3\ndefault:\n x = 4\n}\n_ = x")
	if !g.ReachableWithout(g.Entry, func(*Block) bool { return false }) {
		t.Fatal("exit unreachable")
	}
	// With a default clause there is no head→after edge; the only way
	// past the switch is through a clause. Verify by stopping at every
	// block containing an assignment inside a clause: exit must become
	// unreachable only if all clause bodies are stopped — cheap sanity
	// that clause bodies are on the path.
	stops := func(b *Block) bool {
		for _, n := range b.Nodes {
			if as, ok := n.(*ast.AssignStmt); ok && len(as.Lhs) == 1 {
				if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name == "x" {
					if as.Tok == token.ASSIGN {
						return true
					}
				}
			}
		}
		return false
	}
	if g.ReachableWithout(g.Entry, stops) {
		t.Fatal("switch with default should force flow through a clause")
	}
}

func TestSelectNoDefaultBlocks(t *testing.T) {
	g := build(t, "ch := make(chan int)\nselect {\ncase <-ch:\n}\nx := 1\n_ = x")
	if !g.ReachableWithout(g.Entry, func(*Block) bool { return false }) {
		t.Fatal("exit unreachable through the select case")
	}
}

func TestLabeledContinue(t *testing.T) {
	g := build(t, "outer:\nfor i := 0; i < 2; i++ {\n for j := 0; j < 2; j++ {\n  continue outer\n }\n}")
	if !g.ReachableWithout(g.Entry, func(*Block) bool { return false }) {
		t.Fatal("exit unreachable")
	}
}

func TestGoto(t *testing.T) {
	g := build(t, "i := 0\nagain:\ni++\nif i < 3 {\n goto again\n}")
	if !g.ReachableWithout(g.Entry, func(*Block) bool { return false }) {
		t.Fatal("exit unreachable")
	}
}
