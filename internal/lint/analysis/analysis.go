// Package analysis is a minimal, API-compatible subset of the
// golang.org/x/tools go/analysis framework, implemented on the standard
// library only (this module carries no external dependencies). It
// supports exactly what the repo's analyzers need: purely syntactic
// single-file passes over parsed ASTs with position-carrying
// diagnostics. Analyzers written against it port to the real framework
// by changing one import path.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
)

// Analyzer describes one analysis: a name (used in diagnostics and
// //lint:allow suppressions), documentation, and the pass function.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (interface{}, error)
}

// Pass carries one analyzer's view of one package's worth of files.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	// Report delivers a diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Position resolves a token.Pos against the pass's file set.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}
