// Package analysis is a minimal, API-compatible subset of the
// golang.org/x/tools go/analysis framework, implemented on the standard
// library only (this module carries no external dependencies). Since PR
// 9 it carries what the repo's flow-sensitive analyzers need: per-
// package passes with go/types information (TypesInfo, Pkg) loaded by
// the driver, plus a Facts index carrying the repo's annotation-declared
// invariants (//lint:pair, //lint:fallback, //lint:persist). Analyzers
// written against it port to the real framework by changing one import
// path and threading facts through the framework's own mechanism.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer describes one analysis: a name (used in diagnostics and
// //lint:allow suppressions), documentation, and the pass function.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) (interface{}, error)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	// Files holds every parsed file of the package unit, including
	// _test.go files. Test files are parsed but not type-checked:
	// expressions in them have no TypesInfo entries.
	Files []*ast.File
	// Pkg is the type-checked package; nil when type-checking failed
	// outright (analyzers must tolerate it).
	Pkg *types.Package
	// TypesInfo maps expressions of the package's non-test files to
	// types and objects. Never nil, possibly sparsely populated.
	TypesInfo *types.Info
	// TypeErrors collects soft type-check errors; the pass still runs.
	TypeErrors []error
	// Facts is the cross-package annotation index built by the driver.
	// Never nil.
	Facts *Facts
	// Persist reports whether any file of the package carries a
	// //lint:persist marker (journal/result/cache files live here).
	Persist bool
	// Report delivers a diagnostic to the driver.
	Report func(Diagnostic)
}

// Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf formats and reports a diagnostic.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Position resolves a token.Pos against the pass's file set.
func (p *Pass) Position(pos token.Pos) token.Position {
	return p.Fset.Position(pos)
}

// IsTestFile reports whether the file was parsed from a _test.go file.
func (p *Pass) IsTestFile(f *ast.File) bool {
	return strings.HasSuffix(p.Position(f.Pos()).Filename, "_test.go")
}

// PairSpec is one acquire/settle invariant declared with
//
//	//lint:pair settle=<name>[,<name>...] [panicguard]
//
// on the acquiring function or method: every call to the annotated
// function claims a resource that must reach one of the settle calls on
// every path to the function's exit. When the acquire returns a bool,
// the claim holds only on paths where that bool is true; when its last
// result is an error, only where the error is nil. panicguard
// additionally demands the settle be deferred (or precede any call that
// could panic): the resource must survive a panic unwinding through the
// region.
type PairSpec struct {
	// Settles are the sanctioned settle call names (method or function
	// names; matched against calls whose receiver has the acquirer's
	// receiver type, or against calls settling the acquire's result).
	Settles []string
	// PanicGuard demands panic-safe settlement (defer).
	PanicGuard bool
}

// FallbackSpec is one degradation invariant declared with
//
//	//lint:fallback mark=<Field>
//
// on a fallback-producing function: any assignment of its result must
// be accompanied by a `<base>.<Field> = true` store on every path
// through the assignment (<base> being the assigned-to value), so a
// degraded answer is always marked as such. mark defaults to Degraded.
type FallbackSpec struct {
	Mark string
}

// Facts is the annotation index the driver builds over every loaded
// module package before analyzers run, keyed by the defining objects so
// cross-package calls resolve without name games.
type Facts struct {
	Pairs     map[*types.Func]PairSpec
	Fallbacks map[*types.Func]FallbackSpec
}

// NewFacts returns an empty index.
func NewFacts() *Facts {
	return &Facts{
		Pairs:     map[*types.Func]PairSpec{},
		Fallbacks: map[*types.Func]FallbackSpec{},
	}
}

// PairFor resolves the pair invariant for a called function, if any.
func (f *Facts) PairFor(fn *types.Func) (PairSpec, bool) {
	if f == nil || fn == nil {
		return PairSpec{}, false
	}
	spec, ok := f.Pairs[fn]
	return spec, ok
}

// FallbackFor resolves the fallback invariant for a called function.
func (f *Facts) FallbackFor(fn *types.Func) (FallbackSpec, bool) {
	if f == nil || fn == nil {
		return FallbackSpec{}, false
	}
	spec, ok := f.Fallbacks[fn]
	return spec, ok
}
