package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"tiling3d/internal/lint/analysis"
)

// The loader turns directories of Go files into type-checked packages
// using only the standard library: module-internal imports resolve
// through the loader itself (recursively, memoized), everything else —
// in this dependency-free module, exactly the standard library — goes
// through go/importer's source importer, which type-checks stdlib
// packages from $GOROOT/src. One process-wide loader is shared across
// driver runs so the (expensive, ~seconds) stdlib closure is paid once
// per process, not once per Run call; the test suite leans on that.
type loader struct {
	mu      sync.Mutex
	fset    *token.FileSet
	std     types.ImporterFrom
	modules map[string]string // module path → absolute root dir
	pkgs    map[string]*pkgUnit
	facts   *analysis.Facts
}

// pkgUnit is one loaded, type-checked package directory.
type pkgUnit struct {
	dir     string
	path    string // import path ("" for rootless test trees)
	files   []*ast.File
	pkg     *types.Package
	info    *types.Info
	errs    []error
	persist bool
	loading bool // cycle guard
}

var sharedLoader = &loader{
	fset:    token.NewFileSet(),
	modules: map[string]string{},
	pkgs:    map[string]*pkgUnit{},
	facts:   analysis.NewFacts(),
}

func init() {
	sharedLoader.std, _ = importer.ForCompiler(sharedLoader.fset, "source", nil).(types.ImporterFrom)
}

// registerModuleFor walks up from dir looking for a go.mod and records
// its module path → root mapping, so imports of that module resolve to
// source directories.
func (l *loader) registerModuleFor(dir string) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					mod := strings.TrimSpace(rest)
					l.mu.Lock()
					l.modules[mod] = d
					l.mu.Unlock()
					return
				}
			}
			return
		}
		parent := filepath.Dir(d)
		if parent == d {
			return
		}
		d = parent
	}
}

// dirFor resolves an import path against the registered modules.
func (l *loader) dirFor(path string) (string, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for mod, root := range l.modules {
		if path == mod {
			return root, true
		}
		if rest, ok := strings.CutPrefix(path, mod+"/"); ok {
			return filepath.Join(root, filepath.FromSlash(rest)), true
		}
	}
	return "", false
}

// importPathFor inverts dirFor: the import path of a directory inside a
// registered module, or "".
func (l *loader) importPathFor(dir string) string {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return ""
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for mod, root := range l.modules {
		if abs == root {
			return mod
		}
		if rest, err := filepath.Rel(root, abs); err == nil && !strings.HasPrefix(rest, "..") {
			return mod + "/" + filepath.ToSlash(rest)
		}
	}
	return ""
}

// lintImporter adapts the loader to go/types.
type lintImporter struct{ l *loader }

func (im lintImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

func (im lintImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if dir, ok := im.l.dirFor(path); ok {
		u, err := im.l.load(dir, path)
		if err != nil {
			return nil, err
		}
		if u.pkg == nil {
			return nil, fmt.Errorf("lint: %s: type-check produced no package", path)
		}
		return u.pkg, nil
	}
	if im.l.std == nil {
		return nil, fmt.Errorf("lint: no importer for %q", path)
	}
	return im.l.std.ImportFrom(path, srcDir, mode)
}

// load parses and type-checks the non-test files of dir (memoized).
// importPath may be "" for directories outside any registered module.
// Type errors are soft: they are collected on the unit and the partial
// types.Info is kept, so syntactic analyzers still run and type-aware
// ones degrade gracefully.
func (l *loader) load(dir, importPath string) (*pkgUnit, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	if u, ok := l.pkgs[abs]; ok {
		if u.loading {
			l.mu.Unlock()
			return nil, fmt.Errorf("lint: import cycle through %s", importPath)
		}
		l.mu.Unlock()
		return u, nil
	}
	u := &pkgUnit{dir: abs, path: importPath, loading: true}
	l.pkgs[abs] = u
	l.mu.Unlock()
	defer func() { u.loading = false }()

	entries, err := os.ReadDir(abs)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(abs, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		u.files = append(u.files, f)
	}
	l.typeCheck(u)
	l.collectFacts(u)
	return u, nil
}

func (l *loader) typeCheck(u *pkgUnit) {
	u.info = &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	if len(u.files) == 0 {
		return
	}
	path := u.path
	if path == "" {
		path = u.dir
	}
	conf := types.Config{
		Importer:                 lintImporter{l},
		FakeImportC:              true,
		Error:                    func(err error) { u.errs = append(u.errs, err) },
		DisableUnusedImportCheck: true,
	}
	pkg, err := conf.Check(path, l.fset, u.files, u.info)
	u.pkg = pkg
	if err != nil && len(u.errs) == 0 {
		u.errs = append(u.errs, err)
	}
	for _, f := range u.files {
		if filePersistMarker(f) {
			u.persist = true
		}
	}
}

// collectFacts scans the unit's declarations for annotation directives
// and records them in the process-wide Facts index.
func (l *loader) collectFacts(u *pkgUnit) {
	for _, f := range u.files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			obj, _ := u.info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if rest, ok := strings.CutPrefix(text, "lint:pair"); ok {
					spec, err := parsePairSpec(rest)
					if err != nil {
						continue
					}
					l.mu.Lock()
					l.facts.Pairs[obj] = spec
					l.mu.Unlock()
				}
				if rest, ok := strings.CutPrefix(text, "lint:fallback"); ok {
					spec := parseFallbackSpec(rest)
					l.mu.Lock()
					l.facts.Fallbacks[obj] = spec
					l.mu.Unlock()
				}
			}
		}
	}
}

func parsePairSpec(rest string) (analysis.PairSpec, error) {
	var spec analysis.PairSpec
	for _, field := range strings.Fields(rest) {
		switch {
		case strings.HasPrefix(field, "settle="):
			for _, s := range strings.Split(strings.TrimPrefix(field, "settle="), ",") {
				if s = strings.TrimSpace(s); s != "" {
					spec.Settles = append(spec.Settles, s)
				}
			}
		case field == "panicguard":
			spec.PanicGuard = true
		}
	}
	if len(spec.Settles) == 0 {
		return spec, fmt.Errorf("lint:pair without settle= names")
	}
	return spec, nil
}

func parseFallbackSpec(rest string) analysis.FallbackSpec {
	spec := analysis.FallbackSpec{Mark: "Degraded"}
	for _, field := range strings.Fields(rest) {
		if m, ok := strings.CutPrefix(field, "mark="); ok && m != "" {
			spec.Mark = m
		}
	}
	return spec
}

// filePersistMarker reports whether the file carries a //lint:persist
// comment, marking its package as one that owns journal/result/cache
// files (the atomicwrite analyzer's scope).
func filePersistMarker(f *ast.File) bool {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if strings.HasPrefix(text, "lint:persist") {
				return true
			}
		}
	}
	return false
}
