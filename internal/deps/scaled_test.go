package deps

import (
	"testing"

	"tiling3d/internal/ir"
)

// TestScaledSubscriptDistance pins the coeff*var+const support: equal
// coefficients divide the constant gap, odd gaps prove disjointness, and
// mismatched coefficients degrade to Unknown.
func TestScaledSubscriptDistance(t *testing.T) {
	f2 := func(c int) ir.Expr { return ir.Expr{Const: c, Coeff: map[string]int{"I": 2}} }

	// store F(2I) vs load F(2I+2): gap 2 / coeff 2 = distance 1.
	nest := &ir.Nest{
		Loops: []ir.Loop{ir.SimpleLoop("I", 0, 9)},
		Body:  []ir.Ref{ir.Ref{Array: "F", Store: true, Subs: []ir.Expr{f2(0)}}, ir.Load("F", f2(2))},
	}
	tab, err := Dependences(nest)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Issues) != 0 {
		t.Fatalf("issues on scaled subscripts: %v", tab.IssueStrings())
	}
	if len(tab.Deps) != 1 || tab.Deps[0].Unknown || tab.Deps[0].Dist[0] != 1 {
		t.Fatalf("deps = %v, want one distance-(1) dependence", tab.Deps)
	}

	// store F(2I) vs load F(2I+1): odd gap, disjoint parities, no dep.
	nest.Body[1] = ir.Load("F", f2(1))
	tab, err = Dependences(nest)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Deps) != 0 {
		t.Fatalf("parity-disjoint pair produced deps: %v", tab.Deps)
	}

	// store F(2I) vs load F(3I): coefficients differ, Unknown.
	nest.Body[1] = ir.Load("F", ir.Expr{Coeff: map[string]int{"I": 3}})
	tab, err = Dependences(nest)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Deps) != 1 || !tab.Deps[0].Unknown {
		t.Fatalf("deps = %v, want one Unknown dependence", tab.Deps)
	}
}

// TestTransferNestsAreIndependent proves the MG transfer operators carry
// no loop-carried dependences: rprj3 and psinv have none at all, and
// interp's only dependences are the same-iteration fine += read/write
// pairs.
func TestTransferNestsAreIndependent(t *testing.T) {
	for _, tc := range []struct {
		name string
		nest *ir.Nest
	}{
		{"rprj3", ir.Rprj3Nest(10)},
		{"psinv", ir.PsinvNest(10)},
		{"interp", ir.InterpNest(10)},
		{"resid-aliased", ir.ResidNestDims(10, 10, 10, true)},
	} {
		tab, err := Dependences(tc.nest)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if tab.HasUnknown() {
			t.Fatalf("%s: unknown dependences: %v", tc.name, tab.Deps)
		}
		if carried := tab.Carried(); len(carried) != 0 {
			t.Errorf("%s: carried dependences: %v", tc.name, carried)
		}
	}
}

// TestTimePipelineNestCone pins the time-skewing flow cone the diamond
// schedule is derived from.
func TestTimePipelineNestCone(t *testing.T) {
	tab, err := Dependences(ir.TimePipelineNest(5, 20))
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]int]bool{{1, -1}: false, {1, 0}: false, {1, 1}: false}
	for _, d := range tab.Deps {
		if d.Unknown {
			t.Fatalf("unknown dependence: %v", d)
		}
		if d.Kind != Flow {
			t.Fatalf("non-flow dependence: %v", d)
		}
		key := [2]int{d.Dist[0], d.Dist[1]}
		if _, ok := want[key]; !ok {
			t.Fatalf("unexpected distance %v", d)
		}
		want[key] = true
	}
	for k, seen := range want {
		if !seen {
			t.Errorf("distance %v missing from the table", k)
		}
	}
}

// TestRedBlackFusedNestCone proves every tile-relevant dependence of the
// fused red-black nest points into the non-negative (J, I) quadrant —
// the fact that makes the (1,1) wavefront legal.
func TestRedBlackFusedNestCone(t *testing.T) {
	tab, err := Dependences(ir.RedBlackFusedNest(12, 12, 12))
	if err != nil {
		t.Fatal(err)
	}
	if tab.HasUnknown() {
		t.Fatalf("unknown dependences: %v", tab.Deps)
	}
	if len(tab.Carried()) == 0 {
		t.Fatal("fused red-black nest carries no dependences; the model is wrong")
	}
	ji := tab.Nest.LoopIndex("J")
	ii := tab.Nest.LoopIndex("I")
	for _, d := range tab.Deps {
		if d.Dist[ji] < 0 {
			t.Errorf("dependence with negative J distance: %v", d)
		}
		// A negative I distance is only tolerable when J advances: the
		// tile box for (J>=1, I>=-1) still sits in the wavefront cone.
		if d.Dist[ii] < 0 && d.Dist[ji] == 0 {
			t.Errorf("dependence with negative I distance at J=0: %v", d)
		}
	}
}
