package deps

import (
	"fmt"

	"tiling3d/internal/ir"
)

// Cross-nest dependence analysis for fusion with retiming (the paper's
// Figure 5 compute/copy-back pair and the Figure 12 fused red-black
// passes): when two nests sharing an outer loop are interleaved with
// the second shifted back by `shift` planes, every dependence from the
// first nest to the second must still see its source executed first,
// which holds exactly when shift covers every cross-nest outer-loop
// distance.

// CrossDependence is one dependence from a reference of the first nest
// (Src indexes n1.Body) to one of the second (Dst indexes n2.Body).
// OuterDist is the outer-loop distance: the second nest's access to a
// common element happens OuterDist planes below the first nest's.
type CrossDependence struct {
	Kind      Kind
	Array     string
	Src, Dst  int
	OuterDist int
}

// String renders the dependence the way fusion diagnostics quote it.
func (d CrossDependence) String() string {
	return fmt.Sprintf("%s %s outer distance %d (nest1 #%d -> nest2 #%d)", d.Kind, d.Array, d.OuterDist, d.Src, d.Dst)
}

// CrossDependences computes every cross-nest dependence pair over the
// shared outer loop. Both nests must have the same unit-step outer loop
// variable with constant bounds, and every reference participating in a
// cross-nest pair must subscript the outer variable with unit
// coefficient: a ref that does not use it at all (a constant plane, or
// an outer-invariant array) touches its elements on *every* outer
// iteration, so no finite shift bounds the dependence and the analysis
// refuses rather than understate the minimum legal shift.
func CrossDependences(n1, n2 *ir.Nest) ([]CrossDependence, error) {
	outer, err := sharedOuter(n1, n2)
	if err != nil {
		return nil, err
	}
	var out []CrossDependence
	for i1, r1 := range n1.Body {
		for i2, r2 := range n2.Body {
			if r1.Array != r2.Array || (!r1.Store && !r2.Store) {
				continue
			}
			c1, err := outerOffset(r1, outer)
			if err != nil {
				return nil, err
			}
			c2, err := outerOffset(r2, outer)
			if err != nil {
				return nil, err
			}
			out = append(out, CrossDependence{
				Kind:      kindOf(r1.Store, r2.Store),
				Array:     r1.Array,
				Src:       i1,
				Dst:       i2,
				OuterDist: c2 - c1,
			})
		}
	}
	return out, nil
}

// MinFusionShift returns the smallest shift preserving sequential
// semantics (first nest entirely before the second): the maximum
// cross-nest outer distance, floored at zero, together with a binding
// dependence achieving it (zero CrossDependence when none constrain).
func MinFusionShift(n1, n2 *ir.Nest) (int, CrossDependence, error) {
	cross, err := CrossDependences(n1, n2)
	if err != nil {
		return 0, CrossDependence{}, err
	}
	shift := 0
	var binding CrossDependence
	for _, d := range cross {
		if d.OuterDist > shift {
			shift = d.OuterDist
			binding = d
		}
	}
	return shift, binding, nil
}

// sharedOuter validates the two outer loops match and returns the
// shared variable name.
func sharedOuter(n1, n2 *ir.Nest) (string, error) {
	o1, err := outerLoopOf(n1)
	if err != nil {
		return "", err
	}
	o2, err := outerLoopOf(n2)
	if err != nil {
		return "", err
	}
	if o1 != o2 {
		return "", fmt.Errorf("deps: outer loops differ: %q vs %q", o1, o2)
	}
	return o1, nil
}

func outerLoopOf(n *ir.Nest) (string, error) {
	if len(n.Loops) == 0 {
		return "", fmt.Errorf("deps: empty nest")
	}
	l := n.Loops[0]
	if l.Step != 1 {
		return "", fmt.Errorf("deps: fusion requires unit-step outer loop")
	}
	if _, _, ok := constBounds(l); !ok {
		return "", fmt.Errorf("deps: fusion requires constant outer bounds")
	}
	return l.Name, nil
}

// outerOffset extracts the constant offset of the outer variable in the
// reference's subscripts. A reference that does not use the outer
// variable has no single outer-plane coordinate — every outer iteration
// touches it — so it is refused rather than treated as offset 0, which
// would understate cross-nest distances.
func outerOffset(r ir.Ref, outer string) (int, error) {
	for _, s := range r.Subs {
		if c, ok := s.Coeff[outer]; ok && c != 0 {
			if c != 1 {
				return 0, fmt.Errorf("deps: non-unit outer coefficient in %s%s", r.Array, atPos(r.Pos))
			}
			return s.Const, nil
		}
	}
	return 0, fmt.Errorf("deps: reference to %s does not subscript outer loop %s%s; cross-nest distance unbounded", r.Array, outer, atPos(r.Pos))
}

func atPos(p ir.Pos) string {
	if !p.IsValid() {
		return ""
	}
	return fmt.Sprintf(" (at %s)", p)
}
