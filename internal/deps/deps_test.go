package deps

import (
	"strings"
	"testing"

	"tiling3d/internal/ir"
)

// TestGoldenTables pins the dependence tables of the paper's kernels.
// JACOBI and RESID never read the arrays they write, so a single sweep
// carries nothing; the in-place red-black pass carries plane- and
// row-distance dependences, with the unit I distances pruned as
// unrealizable under the step-2 inner loop.
func TestGoldenTables(t *testing.T) {
	cases := []struct {
		name string
		nest *ir.Nest
		want string
	}{
		{"jacobi", ir.JacobiNest(12, 8), "dependences (loop order K,J,I):\n  none\n"},
		{"resid", ir.ResidNest(12, 8), "dependences (loop order I3,I2,I1):\n  none\n"},
		{"redblack", ir.RedBlackNest(12, 8), strings.Join([]string{
			"dependences (loop order K,J,I):",
			"  anti   A (0,0,0): load A(I,J,K) -> store A(I,J,K)",
			"  flow   A (0,1,0): store A(I,J,K) -> load A(I,J-1,K)",
			"  anti   A (0,1,0): load A(I,J+1,K) -> store A(I,J,K)",
			"  flow   A (1,0,0): store A(I,J,K) -> load A(I,J,K-1)",
			"  anti   A (1,0,0): load A(I,J,K+1) -> store A(I,J,K)",
			"",
		}, "\n")},
	}
	for _, c := range cases {
		tab, err := Dependences(c.nest)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if got := tab.String(); got != c.want {
			t.Errorf("%s table:\n got:\n%s want:\n%s", c.name, got, c.want)
		}
		if len(tab.Issues) != 0 {
			t.Errorf("%s: unexpected issues %v", c.name, tab.IssueStrings())
		}
	}
}

// twoDeep builds do J=1,10 { do I=1,10 { body } }.
func twoDeep(body ...ir.Ref) *ir.Nest {
	return &ir.Nest{
		Loops: []ir.Loop{ir.SimpleLoop("J", 1, 10), ir.SimpleLoop("I", 1, 10)},
		Body:  body,
	}
}

func mustTable(t *testing.T, n *ir.Nest) *Table {
	t.Helper()
	tab, err := Dependences(n)
	if err != nil {
		t.Fatal(err)
	}
	return tab
}

func TestOrientationAndKinds(t *testing.T) {
	i, j := ir.Var("I", 0), ir.Var("J", 0)

	// Store first, load of an older element: the store's value is read
	// one J-iteration later — flow, distance (1,0), store is source.
	tab := mustTable(t, twoDeep(ir.StoreRef("A", i, j), ir.Load("A", i, j.Plus(-1))))
	if len(tab.Deps) != 1 {
		t.Fatalf("deps = %v", tab.Deps)
	}
	d := tab.Deps[0]
	if d.Kind != Flow || d.Src != 0 || d.Dst != 1 || d.Dist[0] != 1 || d.Dist[1] != 0 {
		t.Errorf("flow dep = %+v", d)
	}
	if got := d.String(); got != "flow A distance (1,0) (#0 -> #1)" {
		t.Errorf("String = %q", got)
	}
	if c := d.Carried(tab.Nest); c != "J" {
		t.Errorf("Carried = %q", c)
	}

	// Same pair with the raw distance lexicographically negative: the
	// analyzer must flip orientation (the load of the *newer* element is
	// overwritten later — anti, load is source).
	tab = mustTable(t, twoDeep(ir.StoreRef("A", i, j), ir.Load("A", i, j.Plus(1))))
	d = tab.Deps[0]
	if d.Kind != Anti || d.Src != 1 || d.Dst != 0 || d.Dist[0] != 1 {
		t.Errorf("anti dep = %+v", d)
	}

	// Store/store on the same element, one row apart: output dependence.
	tab = mustTable(t, twoDeep(ir.StoreRef("A", i, j), ir.StoreRef("A", i, j.Plus(-1))))
	d = tab.Deps[0]
	if d.Kind != Output || d.Dist[0] != 1 {
		t.Errorf("output dep = %+v", d)
	}

	// Same iteration touches: program order decides, distance zero.
	tab = mustTable(t, twoDeep(ir.Load("A", i, j), ir.StoreRef("A", i, j)))
	d = tab.Deps[0]
	if d.Kind != Anti || d.Src != 0 || d.Dst != 1 || lexSign(d.Dist) != 0 {
		t.Errorf("loop-independent dep = %+v", d)
	}
	if c := d.Carried(tab.Nest); c != "" {
		t.Errorf("Carried = %q, want loop-independent", c)
	}
}

func TestPairsThatNeverAlias(t *testing.T) {
	i, j := ir.Var("I", 0), ir.Var("J", 0)
	cases := []struct {
		name string
		nest *ir.Nest
	}{
		{"distinct constant planes", twoDeep(ir.StoreRef("A", i, j, ir.Con(2)), ir.Load("A", i, j, ir.Con(3)))},
		{"conflicting same-var constraints", twoDeep(ir.StoreRef("A", i, j, i), ir.Load("A", i, j, i.Plus(1)))},
		{"distance beyond loop span", twoDeep(ir.StoreRef("A", i, j), ir.Load("A", i, j.Plus(11)))},
		{"no store in pair", twoDeep(ir.Load("A", i, j), ir.Load("A", i, j.Plus(1)))},
		{"different arrays", twoDeep(ir.StoreRef("A", i, j), ir.Load("B", i, j))},
	}
	for _, c := range cases {
		if tab := mustTable(t, c.nest); len(tab.Deps) != 0 {
			t.Errorf("%s: deps = %v", c.name, tab.Deps)
		}
	}
}

func TestStepPruning(t *testing.T) {
	i, j := ir.Var("I", 0), ir.Var("J", 0)
	step2 := func(body ...ir.Ref) *ir.Nest {
		return &ir.Nest{
			Loops: []ir.Loop{
				ir.SimpleLoop("J", 1, 10),
				{Name: "I", Lo: ir.BoundOf(ir.Con(1)), Hi: ir.BoundOf(ir.Con(10)), Step: 2},
			},
			Body: body,
		}
	}
	// Unit I distance: unrealizable under step 2.
	if tab := mustTable(t, step2(ir.StoreRef("A", i, j), ir.Load("A", i.Plus(1), j))); len(tab.Deps) != 0 {
		t.Errorf("step-2 unit distance not pruned: %v", tab.Deps)
	}
	// Distance 2: realizable.
	if tab := mustTable(t, step2(ir.StoreRef("A", i, j), ir.Load("A", i.Plus(2), j))); len(tab.Deps) != 1 {
		t.Errorf("step-2 even distance pruned: %v", tab.Deps)
	}
}

// TestUnknownSubscripts checks unanalyzable pairs degrade into Unknown
// dependences plus positioned Issues instead of aborting.
func TestUnknownSubscripts(t *testing.T) {
	i, j := ir.Var("I", 0), ir.Var("J", 0)

	// One reference pins a dimension to a constant plane.
	st := ir.StoreRef("A", i, j)
	ld := ir.Load("A", i, ir.Con(5))
	ld.Pos = ir.Pos{Line: 3, Col: 9}
	tab := mustTable(t, twoDeep(st, ld))
	if len(tab.Deps) != 1 || !tab.Deps[0].Unknown || !tab.HasUnknown() {
		t.Fatalf("deps = %v", tab.Deps)
	}
	if got := tab.Deps[0].String(); got != "flow A distance unknown (#0 -> #1)" {
		t.Errorf("String = %q", got)
	}
	if len(tab.Issues) != 1 || !strings.Contains(tab.Issues[0].String(), "3:9") {
		t.Errorf("issues = %v", tab.IssueStrings())
	}
	// Unknown deps count as carried: they block everything.
	if len(tab.Carried()) != 1 {
		t.Errorf("Carried() = %v", tab.Carried())
	}

	// Transposed index spaces: A(I,J) vs A(J,I).
	tab = mustTable(t, twoDeep(ir.StoreRef("A", i, j), ir.Load("A", j, i)))
	if len(tab.Deps) != 1 || !tab.Deps[0].Unknown {
		t.Errorf("transposed: deps = %v", tab.Deps)
	}

	// Non-affine-model subscript (I+J): ref-driven issue, Unknown pair.
	ij := ir.Expr{Coeff: map[string]int{"I": 1, "J": 1}}
	tab = mustTable(t, twoDeep(ir.StoreRef("A", i, j), ir.Load("A", ij, j)))
	if len(tab.Deps) != 1 || !tab.Deps[0].Unknown || len(tab.Issues) == 0 {
		t.Errorf("non-affine: deps = %v issues = %v", tab.Deps, tab.IssueStrings())
	}

	// A loop variable that is not a loop of the nest: the store/load
	// pair is Unknown, and the unanalyzable store conservatively carries
	// an Unknown output dependence on itself too.
	q := ir.Var("Q", 0)
	tab = mustTable(t, twoDeep(ir.StoreRef("A", i, q), ir.Load("A", i, q)))
	if len(tab.Deps) != 2 {
		t.Fatalf("free var: deps = %v", tab.Deps)
	}
	for _, d := range tab.Deps {
		if !d.Unknown {
			t.Errorf("free var: dep %v not unknown", d)
		}
	}
}

// threeDeep builds do K=1,10 { do J=1,10 { do I=1,10 { body } } }.
func threeDeep(body ...ir.Ref) *ir.Nest {
	return &ir.Nest{
		Loops: []ir.Loop{
			ir.SimpleLoop("K", 1, 10),
			ir.SimpleLoop("J", 1, 10),
			ir.SimpleLoop("I", 1, 10),
		},
		Body: body,
	}
}

// TestUnconstrainedLoopDependences pins the direction-* handling: a
// pair whose subscripts leave a loop of the nest unconstrained aliases
// at *every* realizable distance in it, so no constant vector exists.
// The old analyzer reported distance 0 in the free loop, hiding the
// anti dependences (d,-1,0) that make a K<->J interchange of
// A(I,J)=A(I,J-1) illegal.
func TestUnconstrainedLoopDependences(t *testing.T) {
	i, j := ir.Var("I", 0), ir.Var("J", 0)

	tab := mustTable(t, threeDeep(ir.StoreRef("A", i, j), ir.Load("A", i, j.Plus(-1))))
	if len(tab.Deps) != 2 || !tab.HasUnknown() {
		t.Fatalf("deps = %v", tab.Deps)
	}
	var self, pair *Dependence
	for idx := range tab.Deps {
		d := &tab.Deps[idx]
		if !d.Unknown || !strings.Contains(d.String(), "loop K unconstrained") {
			t.Errorf("dep = %v", d)
		}
		if d.Src == d.Dst {
			self = d
		} else {
			pair = d
		}
	}
	if self == nil || self.Kind != Output || self.Src != 0 {
		t.Errorf("missing output self-dependence: %v", tab.Deps)
	}
	if pair == nil || pair.Kind != Flow {
		t.Errorf("missing flow pair dependence: %v", tab.Deps)
	}
	// Unknown deps count as carried: they must block reordering.
	if len(tab.Carried()) != 2 {
		t.Errorf("Carried() = %v", tab.Carried())
	}

	// Certify refuses a table it cannot express, even for the identity.
	n := threeDeep(ir.StoreRef("A", i, j), ir.Load("A", i, j.Plus(-1)))
	if err := Certify(n, n.Clone()); err == nil || !strings.Contains(err.Error(), "not analyzable") {
		t.Errorf("Certify = %v", err)
	}

	// A lone store omitting a loop carries the output self-dependence
	// on its own (same element rewritten every K iteration).
	tab = mustTable(t, threeDeep(ir.StoreRef("A", i, j)))
	if len(tab.Deps) != 1 || tab.Deps[0].Kind != Output || !tab.Deps[0].Unknown {
		t.Errorf("store-only deps = %v", tab.Deps)
	}

	// A free loop that cannot advance (single iteration) realizes only
	// distance 0, so the zero vector is exact: no dependence.
	one := &ir.Nest{
		Loops: []ir.Loop{ir.SimpleLoop("K", 5, 5), ir.SimpleLoop("J", 1, 10), ir.SimpleLoop("I", 1, 10)},
		Body:  []ir.Ref{ir.StoreRef("A", i, j), ir.Load("A", i, j.Plus(-1))},
	}
	tabOne := mustTable(t, one)
	if len(tabOne.Deps) != 1 || tabOne.Deps[0].Unknown || tabOne.Deps[0].Dist[1] != 1 {
		t.Errorf("trip-1 free loop deps = %v", tabOne.Deps)
	}
}

// TestCrossNestOuterInvariantRefused: a cross-nest reference to a
// shared array that never subscripts the outer loop is touched on
// every outer iteration — no finite shift bounds the dependence, so
// MinFusionShift must refuse instead of silently assuming offset 0.
func TestCrossNestOuterInvariantRefused(t *testing.T) {
	i, j, k := ir.Var("I", 0), ir.Var("J", 0), ir.Var("K", 0)
	loops := func() []ir.Loop {
		return []ir.Loop{
			ir.SimpleLoop("K", 1, 10),
			ir.SimpleLoop("J", 1, 10),
			ir.SimpleLoop("I", 1, 10),
		}
	}
	n1 := &ir.Nest{Loops: loops(), Body: []ir.Ref{ir.StoreRef("A", i, j, k)}}
	fixed := ir.Load("A", i, j, ir.Con(5))
	fixed.Pos = ir.Pos{Line: 7, Col: 3}
	n2 := &ir.Nest{Loops: loops(), Body: []ir.Ref{fixed, ir.StoreRef("B", i, j, k)}}
	_, _, err := MinFusionShift(n1, n2)
	if err == nil || !strings.Contains(err.Error(), "does not subscript outer loop K") || !strings.Contains(err.Error(), "7:3") {
		t.Errorf("MinFusionShift = %v", err)
	}
	// Outer-invariant refs to arrays the nests do not share stay out of
	// scope: no cross pair, no refusal.
	n2only := &ir.Nest{Loops: loops(), Body: []ir.Ref{ir.Load("C", i, j, ir.Con(5)), ir.StoreRef("B", i, j, k)}}
	if shift, _, err := MinFusionShift(n1, n2only); err != nil || shift != 0 {
		t.Errorf("unshared array: shift=%d err=%v", shift, err)
	}
}

func TestDimensionalityMismatchErrors(t *testing.T) {
	i, j := ir.Var("I", 0), ir.Var("J", 0)
	if _, err := Dependences(twoDeep(ir.StoreRef("A", i, j), ir.Load("A", i))); err == nil {
		t.Error("inconsistent dimensionality accepted")
	}
}

func TestPermutedSign(t *testing.T) {
	i, j := ir.Var("I", 0), ir.Var("J", 0)
	// Distance (1,-1) in (J,I) order: legal as-is, reversed under (I,J).
	tab := mustTable(t, twoDeep(ir.StoreRef("A", i.Plus(-1), j.Plus(1)), ir.Load("A", i, j)))
	if len(tab.Deps) != 1 {
		t.Fatalf("deps = %v", tab.Deps)
	}
	d := tab.Deps[0]
	if d.Dist[0] != 1 || d.Dist[1] != -1 {
		t.Fatalf("dist = %v", d.Dist)
	}
	if s := d.PermutedSign([]int{0, 1}); s != 1 {
		t.Errorf("identity sign = %d", s)
	}
	if s := d.PermutedSign([]int{1, 0}); s != -1 {
		t.Errorf("swapped sign = %d", s)
	}
}
