package deps

import (
	"fmt"
	"sort"
	"strings"

	"tiling3d/internal/ir"
)

// Wolf–Lam-style reuse classification per reference group (one group
// per array, as in ir.Groups): the data reuse the paper's Section 2
// tiling exists to convert into cache locality.
//
//   - self-temporal: a reference touches the same element again across
//     iterations of a loop its subscripts do not mention.
//   - self-spatial: consecutive iterations of the innermost loop touch
//     adjacent elements of the fastest-varying dimension — the same
//     cache line.
//   - group-temporal: a reference touches an element another reference
//     of the group touched a constant iteration distance earlier (the
//     B(I,J,K-1)/B(I,J,K+1) pair that makes three Jacobi planes live at
//     once).

// PairReuse is one group-temporal reuse edge: Dst re-touches, Dist
// iterations later, the element Src touched (Dist is lexicographically
// non-negative, loop order outermost first). Loop names the outermost
// loop carrying the reuse.
type PairReuse struct {
	Src, Dst int
	Dist     []int
	Loop     string
}

// Reuse is the reuse classification of one array's reference group.
type Reuse struct {
	Array string
	// Refs are the body indices of the group's references.
	Refs []int
	// SelfTemporal lists the loops granting every reference of the
	// group self-temporal reuse (their variables appear in no subscript
	// of the group).
	SelfTemporal []string
	// SelfSpatial names the innermost loop when it carries unit-stride
	// spatial reuse in the fastest-varying dimension; "" otherwise.
	SelfSpatial string
	// GroupTemporal lists the constant-distance reuse pairs.
	GroupTemporal []PairReuse
}

// ReuseClasses classifies every array's reference group. Arrays with
// unanalyzable subscripts get an entry with no classes (the analyzer
// cannot promise reuse it cannot see); structural malformation errors.
func ReuseClasses(n *ir.Nest) ([]Reuse, error) {
	var order []string
	refs := map[string][]int{}
	for i, r := range n.Body {
		if _, ok := refs[r.Array]; !ok {
			order = append(order, r.Array)
		}
		refs[r.Array] = append(refs[r.Array], i)
		if len(n.Body[refs[r.Array][0]].Subs) != len(r.Subs) {
			return nil, fmt.Errorf("deps: array %s referenced with inconsistent dimensionality", r.Array)
		}
	}

	var out []Reuse
	for _, array := range order {
		g := Reuse{Array: array, Refs: refs[array]}

		// Variables used by any subscript of the group.
		used := map[string]bool{}
		clean := true
		for _, ri := range g.Refs {
			for _, s := range n.Body[ri].Subs {
				if isConst(s) {
					continue
				}
				v, _, ok := ir.AsVarPlusConst(s)
				if !ok || n.LoopIndex(v) < 0 {
					clean = false
					continue
				}
				used[v] = true
			}
		}
		if !clean {
			out = append(out, g)
			continue
		}

		for _, l := range n.Loops {
			if !used[l.Name] {
				g.SelfTemporal = append(g.SelfTemporal, l.Name)
			}
		}

		g.SelfSpatial = selfSpatial(n, g.Refs)
		g.GroupTemporal = groupTemporal(n, g.Refs)
		out = append(out, g)
	}
	return out, nil
}

// selfSpatial reports the innermost loop's name when every reference of
// the group uses it only in the fastest-varying dimension with unit
// coefficient and unit step — adjacent iterations, adjacent elements.
func selfSpatial(n *ir.Nest, refIdx []int) string {
	if len(n.Loops) == 0 {
		return ""
	}
	inner := n.Loops[len(n.Loops)-1]
	if inner.Step != 1 {
		return ""
	}
	for _, ri := range refIdx {
		r := n.Body[ri]
		if len(r.Subs) == 0 {
			return ""
		}
		v, _, ok := ir.AsVarPlusConst(r.Subs[0])
		if !ok || v != inner.Name {
			return ""
		}
		for _, s := range r.Subs[1:] {
			if c, okc := s.Coeff[inner.Name]; okc && c != 0 {
				return ""
			}
		}
	}
	return inner.Name
}

// groupTemporal lists the constant-distance reuse edges among the
// group's references, source first, pruned to realizable distances.
// Loops the pair leaves unconstrained contribute distance 0 — the
// nearest re-touch, which is the distance that matters for reuse (the
// dependence side instead treats them as direction-*).
func groupTemporal(n *ir.Nest, refIdx []int) []PairReuse {
	var out []PairReuse
	for x := 0; x < len(refIdx); x++ {
		for y := x + 1; y < len(refIdx); y++ {
			si, ri := refIdx[x], refIdx[y]
			a, b := n.Body[si], n.Body[ri]
			dist, _, status := pairDistance(n, a, b, func(int, int, string) {})
			if status != pairConst || !realizable(n, dist) {
				continue
			}
			var pr PairReuse
			switch lexSign(dist) {
			case -1:
				neg := make([]int, len(dist))
				for i, v := range dist {
					neg[i] = -v
				}
				pr = PairReuse{Src: ri, Dst: si, Dist: neg}
			default:
				pr = PairReuse{Src: si, Dst: ri, Dist: dist}
			}
			for i, v := range pr.Dist {
				if v != 0 {
					pr.Loop = n.Loops[i].Name
					break
				}
			}
			out = append(out, pr)
		}
	}
	return out
}

// ReuseString renders the classification for one nest, grouped per
// array, summarizing group-temporal edges by carrying loop.
func ReuseString(n *ir.Nest, classes []Reuse) string {
	var b strings.Builder
	b.WriteString("reuse classes:\n")
	for _, g := range classes {
		fmt.Fprintf(&b, "  %s (%d refs):", g.Array, len(g.Refs))
		var parts []string
		if len(g.SelfTemporal) > 0 {
			parts = append(parts, "self-temporal in "+strings.Join(g.SelfTemporal, ","))
		}
		if g.SelfSpatial != "" {
			parts = append(parts, "self-spatial in "+g.SelfSpatial)
		}
		if s := summarizeGroup(g.GroupTemporal); s != "" {
			parts = append(parts, s)
		}
		if len(parts) == 0 {
			parts = append(parts, "none")
		}
		fmt.Fprintf(&b, " %s\n", strings.Join(parts, "; "))
	}
	return b.String()
}

func summarizeGroup(pairs []PairReuse) string {
	if len(pairs) == 0 {
		return ""
	}
	byLoop := map[string]int{}
	var loops []string
	for _, p := range pairs {
		name := p.Loop
		if name == "" {
			name = "(same iteration)"
		}
		if byLoop[name] == 0 {
			loops = append(loops, name)
		}
		byLoop[name]++
	}
	sort.Strings(loops)
	parts := make([]string, len(loops))
	for i, l := range loops {
		parts[i] = fmt.Sprintf("%s x%d", l, byLoop[l])
	}
	return "group-temporal carried by " + strings.Join(parts, ", ")
}
