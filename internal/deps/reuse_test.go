package deps

import (
	"strings"
	"testing"

	"tiling3d/internal/ir"
)

func classOf(t *testing.T, classes []Reuse, array string) Reuse {
	t.Helper()
	for _, g := range classes {
		if g.Array == array {
			return g
		}
	}
	t.Fatalf("no reuse class for %s in %v", array, classes)
	return Reuse{}
}

// TestJacobiReuse pins the classification driving the paper's tiling
// argument: B's six loads share cache lines along I (self-spatial) and
// re-touch each other's elements at constant distances (group-temporal,
// dominated by the J- and K-carried plane reuse tiling tries to keep in
// cache); neither array has self-temporal reuse — every loop appears in
// the subscripts.
func TestJacobiReuse(t *testing.T) {
	n := ir.JacobiNest(12, 8)
	classes, err := ReuseClasses(n)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 2 {
		t.Fatalf("classes = %v", classes)
	}

	b := classOf(t, classes, "B")
	if len(b.Refs) != 6 || len(b.SelfTemporal) != 0 || b.SelfSpatial != "I" {
		t.Errorf("B = %+v", b)
	}
	// 6 refs -> 15 pairs, all at constant realizable distances.
	if len(b.GroupTemporal) != 15 {
		t.Errorf("B group-temporal edges = %d, want 15", len(b.GroupTemporal))
	}
	byLoop := map[string]int{}
	for _, p := range b.GroupTemporal {
		byLoop[p.Loop]++
	}
	// K carries every pair involving a K-offset ref (2 refs x 4 others
	// + the K-1/K+1 pair = 9), J every remaining pair involving a
	// J-offset ref (2 x 2 + the J-1/J+1 pair = 5), I the I-1/I+1 pair.
	if byLoop["K"] != 9 || byLoop["J"] != 5 || byLoop["I"] != 1 {
		t.Errorf("edges per carrying loop = %v", byLoop)
	}

	a := classOf(t, classes, "A")
	if len(a.Refs) != 1 || a.SelfSpatial != "I" || len(a.GroupTemporal) != 0 {
		t.Errorf("A = %+v", a)
	}
}

// TestSelfTemporal: a 2D reference inside a 3D nest reuses the same
// element across every iteration of the loop it does not mention.
func TestSelfTemporal(t *testing.T) {
	i, j := ir.Var("I", 0), ir.Var("J", 0)
	n := &ir.Nest{
		Loops: []ir.Loop{
			ir.SimpleLoop("K", 1, 6),
			ir.SimpleLoop("J", 1, 10),
			ir.SimpleLoop("I", 1, 10),
		},
		Body: []ir.Ref{ir.Load("P", i, j), ir.StoreRef("A", i, j, ir.Var("K", 0))},
	}
	classes, err := ReuseClasses(n)
	if err != nil {
		t.Fatal(err)
	}
	p := classOf(t, classes, "P")
	if len(p.SelfTemporal) != 1 || p.SelfTemporal[0] != "K" {
		t.Errorf("P self-temporal = %v", p.SelfTemporal)
	}
	a := classOf(t, classes, "A")
	if len(a.SelfTemporal) != 0 {
		t.Errorf("A self-temporal = %v", a.SelfTemporal)
	}
}

// TestRedBlackReuseNoSpatial: the step-2 inner loop skips every other
// element, so the group gets no self-spatial class even though I indexes
// the fastest dimension.
func TestRedBlackReuseNoSpatial(t *testing.T) {
	classes, err := ReuseClasses(ir.RedBlackNest(12, 8))
	if err != nil {
		t.Fatal(err)
	}
	a := classOf(t, classes, "A")
	if a.SelfSpatial != "" {
		t.Errorf("step-2 nest classified self-spatial in %q", a.SelfSpatial)
	}
	if len(a.GroupTemporal) == 0 {
		t.Error("in-place stencil has no group-temporal reuse?")
	}
	for _, p := range a.GroupTemporal {
		if p.Loop == "I" && p.Dist[2]%2 != 0 {
			t.Errorf("unrealizable odd I-distance reuse %+v", p)
		}
	}
}

// TestUnanalyzableGroupGetsNoClasses: reuse must not be promised for
// subscripts the analyzer cannot model.
func TestUnanalyzableGroupGetsNoClasses(t *testing.T) {
	i, j := ir.Var("I", 0), ir.Var("J", 0)
	ij := ir.Expr{Coeff: map[string]int{"I": 1, "J": 1}}
	classes, err := ReuseClasses(twoDeep(ir.StoreRef("A", ij, j), ir.Load("A", i, j)))
	if err != nil {
		t.Fatal(err)
	}
	a := classOf(t, classes, "A")
	if len(a.SelfTemporal) != 0 || a.SelfSpatial != "" || len(a.GroupTemporal) != 0 {
		t.Errorf("unanalyzable group classified: %+v", a)
	}
}

func TestReuseString(t *testing.T) {
	n := ir.Jacobi2DNest(12)
	classes, err := ReuseClasses(n)
	if err != nil {
		t.Fatal(err)
	}
	out := ReuseString(n, classes)
	for _, want := range []string{
		"B (4 refs): self-spatial in I; group-temporal carried by I x1, J x5",
		"A (1 refs): self-spatial in I",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("ReuseString missing %q:\n%s", want, out)
		}
	}
}
