package deps

import (
	"strings"
	"testing"

	"tiling3d/internal/ir"
)

// permuted clones the nest with loops reordered by name, outermost
// first, with no legality checking — exactly what Certify must judge.
func permuted(t *testing.T, n *ir.Nest, order ...string) *ir.Nest {
	t.Helper()
	out := n.Clone()
	loops := make([]ir.Loop, len(order))
	for pos, name := range order {
		idx := n.LoopIndex(name)
		if idx < 0 {
			t.Fatalf("no loop %s", name)
		}
		loops[pos] = out.Loops[idx]
	}
	out.Loops = loops
	return out
}

// stripMined clones the nest splitting the named loop into a tile loop
// (step = factor) and an element loop, in place — the StripMine shape
// Certify recognizes, rebuilt here so the package need not import
// transform (transform imports deps).
func stripMined(t *testing.T, n *ir.Nest, loopName, tileName string, factor int) *ir.Nest {
	t.Helper()
	idx := n.LoopIndex(loopName)
	if idx < 0 {
		t.Fatalf("no loop %s", loopName)
	}
	out := n.Clone()
	orig := out.Loops[idx]
	tile := ir.Loop{Name: tileName, Lo: orig.Lo, Hi: orig.Hi, Step: factor}
	elem := ir.Loop{
		Name: loopName,
		Lo:   ir.BoundOf(ir.Var(tileName, 0)),
		Hi:   ir.BoundOf(append([]ir.Expr{ir.Var(tileName, factor-1)}, orig.Hi.Exprs...)...),
		Step: 1,
	}
	loops := append([]ir.Loop{}, out.Loops[:idx]...)
	loops = append(loops, tile, elem)
	loops = append(loops, out.Loops[idx+1:]...)
	out.Loops = loops
	return out
}

// skewedNest carries the classic interchange-blocking dependence: store
// A(I-1,J+1) then load A(I,J) gives flow distance (1,-1) in (J,I) order
// — legal as written, reversed if I moves outermost.
func skewedNest() *ir.Nest {
	i, j := ir.Var("I", 0), ir.Var("J", 0)
	return twoDeep(ir.StoreRef("A", i.Plus(-1), j.Plus(1)), ir.Load("A", i, j))
}

func TestCertifyIdentityAndLegalPermutations(t *testing.T) {
	for _, n := range []*ir.Nest{ir.JacobiNest(12, 8), ir.ResidNest(12, 8), ir.RedBlackNest(12, 8), skewedNest()} {
		if err := Certify(n, n.Clone()); err != nil {
			t.Errorf("identity refused: %v", err)
		}
	}
	// Dependence-free nests certify under any permutation.
	jac := ir.JacobiNest(12, 8)
	if err := Certify(jac, permuted(t, jac, "I", "K", "J")); err != nil {
		t.Errorf("jacobi permutation refused: %v", err)
	}
	// The red-black deps (0,1,0) and (1,0,0) survive a K<->J swap.
	rb := ir.RedBlackNest(12, 8)
	if err := Certify(rb, permuted(t, rb, "J", "K", "I")); err != nil {
		t.Errorf("redblack J,K,I refused: %v", err)
	}
}

func TestCertifyRefusesReversedDependence(t *testing.T) {
	n := skewedNest()
	err := Certify(n, permuted(t, n, "I", "J"))
	if err == nil {
		t.Fatal("reversing permutation certified")
	}
	// The diagnostic must name the violated distance vector.
	if !strings.Contains(err.Error(), "reverses") || !strings.Contains(err.Error(), "flow A distance (1,-1)") {
		t.Errorf("diagnostic = %v", err)
	}

	// Moving red-black's I loop outermost is fine ((0,*,0) distances
	// have no I component), but reversing J against K is not once a
	// (0,1,0) dependence must cross a reversed... it is fine too; the
	// genuinely illegal move needs a negative inner component, so build
	// one: distance (1,-2) under step-2 inner loop.
	i, j := ir.Var("I", 0), ir.Var("J", 0)
	rb := &ir.Nest{
		Loops: []ir.Loop{
			ir.SimpleLoop("J", 1, 10),
			{Name: "I", Lo: ir.BoundOf(ir.Con(1)), Hi: ir.BoundOf(ir.Con(10)), Step: 2},
		},
		Body: []ir.Ref{ir.StoreRef("A", i.Plus(-2), j.Plus(1)), ir.Load("A", i, j)},
	}
	if err := Certify(rb, permuted(t, rb, "I", "J")); err == nil {
		t.Error("step-2 reversing permutation certified")
	}
}

func TestCertifyStripMining(t *testing.T) {
	n := skewedNest()
	// Strip-mining alone never reorders iterations: always certifiable.
	sm := stripMined(t, n, "J", "JJ", 4)
	if err := Certify(n, sm); err != nil {
		t.Errorf("strip-mine refused: %v", err)
	}
	// Tiling J and hoisting JJ outermost keeps (1,-1) legal: the J tile
	// interval [0,1] defers to the exact J distance 1.
	smHoisted := permuted(t, sm, "JJ", "J", "I")
	if err := Certify(n, smHoisted); err != nil {
		t.Errorf("hoisted JJ refused: %v", err)
	}
	// Tiling I and hoisting II outermost is NOT provable: the I tile
	// distance spans [-1,0], so the (1,-1) dependence may cross tile
	// boundaries backwards before J breaks the tie.
	smI := permuted(t, stripMined(t, n, "I", "II", 4), "II", "J", "I")
	err := Certify(n, smI)
	if err == nil {
		t.Fatal("backward-spanning tile certified")
	}
	if !strings.Contains(err.Error(), "cannot prove") || !strings.Contains(err.Error(), "[-1,0]") {
		t.Errorf("diagnostic = %v", err)
	}

	// The paper's full tiling (JJ, II, K, J, I) on a dependence-free
	// kernel certifies.
	jac := ir.JacobiNest(12, 8)
	tiled := permuted(t,
		stripMined(t, stripMined(t, jac, "J", "JJ", 5), "I", "II", 4),
		"JJ", "II", "K", "J", "I")
	if err := Certify(jac, tiled); err != nil {
		t.Errorf("paper tiling refused: %v", err)
	}
}

func TestCertifyStructuralRefusals(t *testing.T) {
	n := skewedNest()

	// Dropped loop.
	dropped := n.Clone()
	dropped.Loops = dropped.Loops[:1]
	if err := Certify(n, dropped); err == nil || !strings.Contains(err.Error(), "missing") {
		t.Errorf("dropped loop: %v", err)
	}

	// Reordered body.
	swapped := n.Clone()
	swapped.Body[0], swapped.Body[1] = swapped.Body[1], swapped.Body[0]
	if err := Certify(n, swapped); err == nil || !strings.Contains(err.Error(), "reference #0 changed") {
		t.Errorf("reordered body: %v", err)
	}

	// Unrecognizable extra loop.
	extra := n.Clone()
	extra.Loops = append([]ir.Loop{ir.SimpleLoop("Q", 1, 4)}, extra.Loops...)
	if err := Certify(n, extra); err == nil || !strings.Contains(err.Error(), "Q") {
		t.Errorf("extra loop: %v", err)
	}

	// Unknown dependence: refuse to certify anything.
	i, j := ir.Var("I", 0), ir.Var("J", 0)
	unk := twoDeep(ir.StoreRef("A", i, j), ir.Load("A", i, ir.Con(5)))
	if err := Certify(unk, unk.Clone()); err == nil || !strings.Contains(err.Error(), "not analyzable") {
		t.Errorf("unknown dep: %v", err)
	}
}

// fusable builds a Jacobi-style compute nest and a copy-back nest whose
// cross dependence sits `off` planes ahead.
func fusable(off int) (*ir.Nest, *ir.Nest) {
	i, j, k := ir.Var("I", 0), ir.Var("J", 0), ir.Var("K", 0)
	loops := func() []ir.Loop {
		return []ir.Loop{
			ir.SimpleLoop("K", 1, 10),
			ir.SimpleLoop("J", 1, 10),
			ir.SimpleLoop("I", 1, 10),
		}
	}
	n1 := &ir.Nest{Loops: loops(), Body: []ir.Ref{
		ir.Load("B", i, j, k.Plus(-1)),
		ir.Load("B", i, j, k.Plus(1)),
		ir.StoreRef("A", i, j, k),
	}}
	n2 := &ir.Nest{Loops: loops(), Body: []ir.Ref{
		ir.Load("A", i, j, k.Plus(off)),
		ir.StoreRef("B", i, j, k),
	}}
	return n1, n2
}

func TestMinFusionShift(t *testing.T) {
	// Copy-back reading plane K: flow at distance 0, but the compute
	// nest still needs plane K-1 of B one iteration after the copy-back
	// would overwrite it — anti dependence, shift 1.
	n1, n2 := fusable(0)
	shift, binding, err := MinFusionShift(n1, n2)
	if err != nil {
		t.Fatal(err)
	}
	if shift != 1 {
		t.Errorf("shift = %d, want 1", shift)
	}
	if binding.Kind != Anti || binding.Array != "B" || binding.OuterDist != 1 {
		t.Errorf("binding = %+v", binding)
	}
	if got := binding.String(); got != "anti B outer distance 1 (nest1 #0 -> nest2 #1)" {
		t.Errorf("binding string = %q", got)
	}

	// Reading ahead: the flow dependence dominates.
	n1, n2 = fusable(3)
	if shift, binding, _ = MinFusionShift(n1, n2); shift != 3 || binding.Kind != Flow || binding.Array != "A" {
		t.Errorf("shift = %d binding = %+v", shift, binding)
	}

	// No cross dependences at all: shift 0, zero binding.
	i, j, k := ir.Var("I", 0), ir.Var("J", 0), ir.Var("K", 0)
	m1 := &ir.Nest{Loops: []ir.Loop{ir.SimpleLoop("K", 1, 10)}, Body: []ir.Ref{ir.StoreRef("A", i, j, k)}}
	m2 := &ir.Nest{Loops: []ir.Loop{ir.SimpleLoop("K", 1, 10)}, Body: []ir.Ref{ir.StoreRef("C", i, j, k)}}
	if shift, binding, err = MinFusionShift(m1, m2); err != nil || shift != 0 || binding.Array != "" {
		t.Errorf("independent nests: shift=%d binding=%+v err=%v", shift, binding, err)
	}

	// Mismatched outer loops refuse.
	m2.Loops[0].Name = "T"
	if _, _, err = MinFusionShift(m1, m2); err == nil {
		t.Error("mismatched outer loops accepted")
	}
}
