package deps

import (
	"fmt"

	"tiling3d/internal/ir"
)

// Certify proves a transformed nest preserves every dependence of the
// original: it re-derives the dependence table on `before`, maps each
// distance vector into `after`'s loop order, and verifies the source
// still executes before the sink under the new schedule.
//
// The mapping understands the two shapes our transformations produce:
//
//   - a loop of `after` that is also a loop of `before` contributes the
//     original element-space distance exactly (interchange);
//   - a loop of `after` absent from `before` must be a strip-mine
//     tile-control loop — recognized because some element loop's lower
//     bound references it — and contributes the interval
//     [floor(d/S), ceil(d/S)] of tile-index distances a d-apart pair
//     can have under tile size S (strip-mining).
//
// The check is exact for constant components and conservative for
// intervals: a component that could be negative while everything outer
// could be zero fails certification, so Certify never approves a
// schedule it cannot prove. The zero-distance case falls through to
// program order, which every transformation here preserves (the body is
// cloned, never reordered).
func Certify(before, after *ir.Nest) error {
	tb, err := Dependences(before)
	if err != nil {
		return fmt.Errorf("deps: certify: %w", err)
	}
	for _, d := range tb.Deps {
		if d.Unknown {
			return fmt.Errorf("deps: certify: %s is not analyzable; refusing to certify", d)
		}
	}
	if err := sameBody(before, after); err != nil {
		return fmt.Errorf("deps: certify: %w", err)
	}

	// Every original loop must survive into the transformed nest (our
	// transformations rename nothing and delete nothing).
	for _, l := range before.Loops {
		if after.LoopIndex(l.Name) < 0 {
			return fmt.Errorf("deps: certify: loop %s of the original nest is missing from the transformed nest", l.Name)
		}
	}

	// Classify after's loops: element loops (shared with before) map
	// distances exactly; extra loops must be recognizable tile-control
	// loops over an element loop.
	type level struct {
		name string
		// elemVar is the before-loop whose distance this level reflects.
		elemVar string
		// tileSize is 0 for element loops, the strip-mine factor for
		// tile-control loops.
		tileSize int
	}
	levels := make([]level, len(after.Loops))
	for i, l := range after.Loops {
		if before.LoopIndex(l.Name) >= 0 {
			levels[i] = level{name: l.Name, elemVar: l.Name}
			continue
		}
		elem, err := controlledElemLoop(before, after, l.Name)
		if err != nil {
			return fmt.Errorf("deps: certify: %w", err)
		}
		if l.Step < 1 {
			return fmt.Errorf("deps: certify: tile loop %s has non-positive step %d", l.Name, l.Step)
		}
		levels[i] = level{name: l.Name, elemVar: elem, tileSize: l.Step}
	}

	for _, d := range tb.Deps {
		distOf := func(v string) int { return d.Dist[before.LoopIndex(v)] }
	scan:
		for li, lv := range levels {
			var lo, hi int
			if lv.tileSize == 0 {
				lo = distOf(lv.elemVar)
				hi = lo
			} else {
				de := distOf(lv.elemVar)
				lo, hi = floorDiv(de, lv.tileSize), ceilDiv(de, lv.tileSize)
			}
			switch {
			case lo > 0:
				// Source strictly precedes sink at this level.
				break scan
			case lo == 0:
				// Possibly equal here; the decision moves inward. (hi>0
				// realizations are strictly preserved already.)
				continue
			case hi < 0:
				return fmt.Errorf("deps: certify: transformed loop order reverses %s at loop %s (level %d)", d, lv.name, li)
			default: // lo < 0 <= hi
				return fmt.Errorf("deps: certify: cannot prove loop %s preserves %s (tile-index distance spans [%d,%d])", lv.name, d, lo, hi)
			}
		}
		// All levels can be zero simultaneously only for the zero
		// vector, where program order decides — and the body order is
		// unchanged (checked by sameBody), so Src still precedes Dst.
	}
	return nil
}

// sameBody verifies the transformed nest executes the same references
// in the same program order — true of every reordering transformation
// here, and the anchor that lets Certify match dependences by index.
func sameBody(before, after *ir.Nest) error {
	if len(before.Body) != len(after.Body) {
		return fmt.Errorf("body length changed: %d vs %d references", len(before.Body), len(after.Body))
	}
	for i := range before.Body {
		a, b := before.Body[i], after.Body[i]
		if a.Array != b.Array || a.Store != b.Store || len(a.Subs) != len(b.Subs) {
			return fmt.Errorf("body reference #%d changed: %s vs %s", i, refString(a), refString(b))
		}
		for s := range a.Subs {
			if a.Subs[s].String() != b.Subs[s].String() {
				return fmt.Errorf("body reference #%d subscript %d changed: %s vs %s", i, s, a.Subs[s], b.Subs[s])
			}
		}
	}
	return nil
}

// controlledElemLoop identifies which element loop a tile-control loop
// drives: the after-loop whose lower bound references it and whose name
// is a loop of the original nest.
func controlledElemLoop(before, after *ir.Nest, tileName string) (string, error) {
	for _, l := range after.Loops {
		for _, e := range l.Lo.Exprs {
			if c, ok := e.Coeff[tileName]; ok && c != 0 {
				if before.LoopIndex(l.Name) < 0 {
					return "", fmt.Errorf("loop %s bounds reference %s but is not an original loop", l.Name, tileName)
				}
				return l.Name, nil
			}
		}
	}
	return "", fmt.Errorf("loop %s is neither an original loop nor a recognizable tile-control loop", tileName)
}

func floorDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

func ceilDiv(a, b int) int {
	q := a / b
	if a%b != 0 && (a < 0) == (b < 0) {
		q++
	}
	return q
}
