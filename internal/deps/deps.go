// Package deps is the dependence-and-reuse analyzer for the loop-nest
// IR: the single legality abstraction behind every transformation in
// internal/transform.
//
// For every pair of references to the same array with at least one
// store it computes the constant distance vector in loop-nest order
// (outermost first), orients it from the access that executes first
// (the source) to the one that executes later (the sink), and
// classifies it: store→load is a flow (true) dependence, load→store is
// an anti dependence, store→store is an output dependence. Distances
// the iteration space cannot realize are pruned: a loop of step s only
// separates iterations by multiples of s, and constant-bound loops only
// by at most their trip span — which is how the analyzer proves the
// red-black color pass carries no unit-stride I dependences even though
// the subscripts suggest them.
//
// Subscripts outside the loopVar+const model the paper's kernels use
// (and mixed variable/constant dimensions across a pair) do not abort
// the analysis: they are recorded as Issues, with source positions when
// the nest was parsed, and the affected pairs become Unknown
// dependences that conservatively block any transformation consulting
// the table. A pair whose subscripts leave some loop of the nest
// entirely unconstrained (store A(I,J) under a K loop) aliases at
// *every* realizable distance in that loop — a direction-* component no
// single constant vector can express — so it too becomes an Unknown
// dependence, and a store with such a loop carries an Unknown output
// dependence on itself. The transformations in internal/transform
// (Interchange, TileInner2/ApplyPlan, FuseShifted) all consult this
// table, and Certify re-derives dependences on a transformed nest to
// prove every original dependence still executes source before sink.
package deps

import (
	"fmt"
	"sort"
	"strings"

	"tiling3d/internal/ir"
)

// Kind classifies a dependence by which endpoints write.
type Kind int

const (
	// Flow is store→load: the sink reads what the source wrote.
	Flow Kind = iota
	// Anti is load→store: the sink overwrites what the source read.
	Anti
	// Output is store→store: the sink overwrites the source's value.
	Output
)

func (k Kind) String() string {
	switch k {
	case Flow:
		return "flow"
	case Anti:
		return "anti"
	case Output:
		return "output"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Dependence is one dependence between two body references of a nest.
// Src and Dst index Nest.Body; the source executes first. Dist is the
// iteration distance per loop (outermost first), lexicographically
// non-negative by construction; nil when Unknown.
type Dependence struct {
	Kind  Kind
	Array string
	Src   int
	Dst   int
	Dist  []int
	// Unknown marks a pair whose distance is not a compile-time
	// constant (subscripts outside the loopVar+const model, or a loop
	// the pair's subscripts leave unconstrained). Unknown dependences
	// conservatively block every transformation.
	Unknown bool
	// Why explains an Unknown dependence when the cause is not already
	// covered by a positioned Issue (the unconstrained-loop case).
	Why string
}

// String renders the dependence with its distance vector, the form the
// transformation diagnostics quote.
func (d Dependence) String() string {
	if d.Unknown {
		if d.Why != "" {
			return fmt.Sprintf("%s %s distance unknown (%s) (#%d -> #%d)", d.Kind, d.Array, d.Why, d.Src, d.Dst)
		}
		return fmt.Sprintf("%s %s distance unknown (#%d -> #%d)", d.Kind, d.Array, d.Src, d.Dst)
	}
	return fmt.Sprintf("%s %s distance %s (#%d -> #%d)", d.Kind, d.Array, distString(d.Dist), d.Src, d.Dst)
}

// Carried returns the name of the outermost loop with nonzero distance,
// or "" for a loop-independent (same-iteration) dependence.
func (d Dependence) Carried(n *ir.Nest) string {
	for i, v := range d.Dist {
		if v != 0 {
			return n.Loops[i].Name
		}
	}
	return ""
}

func distString(dist []int) string {
	parts := make([]string, len(dist))
	for i, v := range dist {
		parts[i] = fmt.Sprintf("%d", v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// Issue is one subscript the analyzer could not put into the
// loopVar+const model, with its source position when known.
type Issue struct {
	RefIndex int
	Dim      int
	Pos      ir.Pos
	Reason   string
}

func (is Issue) String() string {
	if is.Pos.IsValid() {
		return fmt.Sprintf("%s: body #%d dim %d: %s", is.Pos, is.RefIndex, is.Dim, is.Reason)
	}
	return fmt.Sprintf("body #%d dim %d: %s", is.RefIndex, is.Dim, is.Reason)
}

// Table is the dependence table of one nest.
type Table struct {
	Nest   *ir.Nest
	Deps   []Dependence
	Issues []Issue
}

// HasUnknown reports whether any dependence lacks a constant distance;
// such tables block every transformation.
func (t *Table) HasUnknown() bool {
	for _, d := range t.Deps {
		if d.Unknown {
			return true
		}
	}
	return false
}

// Carried returns the dependences with nonzero distance — the
// loop-carried ones that constrain reordering transformations.
func (t *Table) Carried() []Dependence {
	var out []Dependence
	for _, d := range t.Deps {
		if d.Unknown {
			out = append(out, d)
			continue
		}
		for _, v := range d.Dist {
			if v != 0 {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

// String renders the table, one dependence per line, for golden tests
// and stencilvet.
func (t *Table) String() string {
	var b strings.Builder
	names := make([]string, len(t.Nest.Loops))
	for i, l := range t.Nest.Loops {
		names[i] = l.Name
	}
	fmt.Fprintf(&b, "dependences (loop order %s):\n", strings.Join(names, ","))
	if len(t.Deps) == 0 {
		b.WriteString("  none\n")
	}
	for _, d := range t.Deps {
		fmt.Fprintf(&b, "  %-6s %s %s: %s -> %s\n",
			d.Kind, d.Array, depDist(d), refString(t.Nest.Body[d.Src]), refString(t.Nest.Body[d.Dst]))
	}
	return b.String()
}

func depDist(d Dependence) string {
	if d.Unknown {
		return "(?)"
	}
	return distString(d.Dist)
}

// refString renders a reference the way Nest.String does.
func refString(r ir.Ref) string {
	subs := make([]string, len(r.Subs))
	for i, s := range r.Subs {
		subs[i] = s.String()
	}
	op := "load"
	if r.Store {
		op = "store"
	}
	return fmt.Sprintf("%s %s(%s)", op, r.Array, strings.Join(subs, ","))
}

// Dependences computes the dependence table of the nest. The only hard
// error is a structurally malformed nest (an array referenced with
// different subscript counts); everything else degrades into Issues and
// Unknown dependences.
func Dependences(n *ir.Nest) (*Table, error) {
	t := &Table{Nest: n}
	dims := map[string]int{}
	for _, r := range n.Body {
		if d, ok := dims[r.Array]; ok && d != len(r.Subs) {
			return nil, fmt.Errorf("deps: array %s referenced with %d and %d subscripts", r.Array, d, len(r.Subs))
		}
		dims[r.Array] = len(r.Subs)
	}

	seenIssue := map[[2]int]bool{}
	issue := func(refIdx, dim int, reason string) {
		key := [2]int{refIdx, dim}
		if seenIssue[key] {
			return
		}
		seenIssue[key] = true
		t.Issues = append(t.Issues, Issue{RefIndex: refIdx, Dim: dim, Pos: n.Body[refIdx].Pos, Reason: reason})
	}

	// Ref-driven issues: subscripts that are neither a constant nor
	// loopVar+const over an enclosing loop.
	analyzable := make([]bool, len(n.Body))
	for ri, r := range n.Body {
		analyzable[ri] = true
		for dim, s := range r.Subs {
			if len(s.Coeff) == 0 || isConst(s) {
				continue
			}
			v, _, _, ok := ir.AsScaledVarPlusConst(s)
			if !ok {
				issue(ri, dim, fmt.Sprintf("subscript %q is not coeff*loopVar+const", s))
				analyzable[ri] = false
				continue
			}
			if n.LoopIndex(v) < 0 {
				issue(ri, dim, fmt.Sprintf("subscript variable %s is not a loop of the nest", v))
				analyzable[ri] = false
			}
		}
	}

	// si == ri pairs a store with itself: with every loop constrained
	// the distance is the zero vector (no dependence), but a store whose
	// subscripts omit a loop rewrites the same element across that
	// loop's iterations — an output self-dependence.
	for si := 0; si < len(n.Body); si++ {
		for ri := si; ri < len(n.Body); ri++ {
			a, b := n.Body[si], n.Body[ri]
			if a.Array != b.Array || (!a.Store && !b.Store) {
				continue
			}
			if !analyzable[si] || !analyzable[ri] {
				t.Deps = append(t.Deps, unknownDep(a.Array, si, ri, a.Store, b.Store))
				continue
			}
			dist, constrained, status := pairDistance(n, a, b, func(dim, which int, reason string) {
				idx := si
				if which == 1 {
					idx = ri
				}
				issue(idx, dim, reason)
			})
			switch status {
			case pairNone:
				continue
			case pairUnknown:
				t.Deps = append(t.Deps, unknownDep(a.Array, si, ri, a.Store, b.Store))
			case pairConst:
				if !realizable(n, dist) {
					continue
				}
				if free := unconstrainedLoops(n, dist, constrained); len(free) > 0 {
					d := unknownDep(a.Array, si, ri, a.Store, b.Store)
					d.Why = fmt.Sprintf("loop %s unconstrained by the subscripts", strings.Join(free, ","))
					t.Deps = append(t.Deps, d)
					continue
				}
				if si == ri {
					// Fully constrained self-pair: zero distance, no
					// dependence.
					continue
				}
				t.Deps = append(t.Deps, orient(a, b, si, ri, dist))
			}
		}
	}
	return t, nil
}

// unconstrainedLoops returns the loops no subscript pair constrains and
// that can realize a nonzero distance — the direction-* components that
// make a pair's distance non-constant. A strip-mine tile-control loop
// is exempt when its element loop is constrained at distance 0: the
// element value pins the tile value (J in [JJ, JJ+S-1] with JJ stepping
// by S has exactly one JJ per J), so the tile distance is exactly 0 too.
func unconstrainedLoops(n *ir.Nest, dist []int, constrained []bool) []string {
	var free []string
	for li, l := range n.Loops {
		if constrained[li] || !loopCanAdvance(l) {
			continue
		}
		if yi := tileControlElem(n, li); yi >= 0 && constrained[yi] && dist[yi] == 0 {
			continue
		}
		free = append(free, l.Name)
	}
	return free
}

// tileControlElem returns the index of the element loop the loop li
// tile-controls in the exact StripMine shape — the element loop's lower
// bound is the tile variable alone and its upper bound caps at
// tileVar+step-1 — or -1 when li is not a tile-control loop. In that
// shape any element value determines the tile value uniquely.
func tileControlElem(n *ir.Nest, li int) int {
	name, step := n.Loops[li].Name, n.Loops[li].Step
	if step < 1 {
		return -1
	}
	for yi, y := range n.Loops {
		if yi == li || len(y.Lo.Exprs) != 1 {
			continue
		}
		lo := y.Lo.Exprs[0]
		if lo.Const != 0 || lo.Coeff[name] != 1 || !soleCoeff(lo, name) {
			continue
		}
		for _, e := range y.Hi.Exprs {
			if e.Coeff[name] == 1 && e.Const == step-1 && soleCoeff(e, name) {
				return yi
			}
		}
	}
	return -1
}

// soleCoeff reports whether name is the only variable with a nonzero
// coefficient in e.
func soleCoeff(e ir.Expr, name string) bool {
	for v, c := range e.Coeff {
		if c != 0 && v != name {
			return false
		}
	}
	return true
}

// loopCanAdvance reports whether the loop can execute two distinct
// iterations, i.e. whether a pair unconstrained in it can be separated
// by a nonzero distance. Non-constant bounds conservatively count as
// advancing.
func loopCanAdvance(l ir.Loop) bool {
	lo, hi, ok := constBounds(l)
	if !ok {
		return true
	}
	step := l.Step
	if step < 1 {
		step = 1
	}
	return lo+step <= hi
}

func isConst(e ir.Expr) bool {
	for _, c := range e.Coeff {
		if c != 0 {
			return false
		}
	}
	return true
}

func unknownDep(array string, si, ri int, aStore, bStore bool) Dependence {
	// Orientation is unknown; report in program order.
	return Dependence{Kind: kindOf(aStore, bStore), Array: array, Src: si, Dst: ri, Unknown: true}
}

func kindOf(srcStore, dstStore bool) Kind {
	switch {
	case srcStore && dstStore:
		return Output
	case srcStore:
		return Flow
	default:
		return Anti
	}
}

type pairStatus int

const (
	pairNone pairStatus = iota // the refs never touch a common element
	pairConst
	pairUnknown
)

// pairDistance computes the raw per-loop distance between a and b: b's
// iteration minus a's for a common element. status pairNone means the
// subscripts can never match; pairUnknown means the distance is not a
// single constant vector. constrained marks the loops some subscript
// pair actually pins; components of unconstrained loops are reported as
// 0 — the *nearest* alias, which is what reuse analysis wants, while
// Dependences treats such loops as direction-* via unconstrainedLoops.
func pairDistance(n *ir.Nest, a, b ir.Ref, report func(dim, which int, reason string)) (dist []int, constrained []bool, status pairStatus) {
	dist = make([]int, len(n.Loops))
	set := make([]bool, len(n.Loops))
	unknown := false
	for dim := range a.Subs {
		as, bs := a.Subs[dim], b.Subs[dim]
		aConst, bConst := isConst(as), isConst(bs)
		switch {
		case aConst && bConst:
			if as.Const != bs.Const {
				return nil, nil, pairNone
			}
		case aConst != bConst:
			// One side pins the dimension to a constant plane: the pair
			// overlaps only on that plane, so no uniform distance exists.
			which := 0
			if bConst {
				which = 1
			}
			report(dim, which, "mixes a loop subscript with a constant; dependence distance is not uniform")
			unknown = true
		default:
			av, acoeff, ac, _ := ir.AsScaledVarPlusConst(as)
			bv, bcoeff, bc, _ := ir.AsScaledVarPlusConst(bs)
			if av != bv {
				// Different index spaces (A(I,J) vs A(J,I)): overlap is
				// possible but not at a constant distance.
				report(dim, 0, fmt.Sprintf("indexed by %s in one reference and %s in another", av, bv))
				unknown = true
				continue
			}
			if acoeff != bcoeff {
				// coeff*V on one side and coeff'*V on the other overlap at
				// distances that depend on V itself, not a constant.
				report(dim, 0, fmt.Sprintf("indexed by %d*%s in one reference and %d*%s in another", acoeff, av, bcoeff, bv))
				unknown = true
				continue
			}
			li := n.LoopIndex(av)
			num := ac - bc
			if num%acoeff != 0 {
				// coeff*V+c1 = coeff*V'+c2 has no integer solution: the
				// references live on disjoint residues (the parity argument
				// that makes interp's eight stores independent).
				return nil, nil, pairNone
			}
			d := num / acoeff
			if set[li] && dist[li] != d {
				// Two dimensions constrain the same loop inconsistently:
				// no common element exists.
				return nil, nil, pairNone
			}
			dist[li], set[li] = d, true
		}
	}
	if unknown {
		return nil, nil, pairUnknown
	}
	return dist, set, pairConst
}

// realizable prunes distances the iteration space cannot produce: a
// step-s loop separates iterations only by multiples of s, and a loop
// with constant bounds only by at most its span.
func realizable(n *ir.Nest, dist []int) bool {
	for li, d := range dist {
		if d == 0 {
			continue
		}
		l := n.Loops[li]
		if l.Step > 1 && d%l.Step != 0 {
			return false
		}
		if lo, hi, ok := constBounds(l); ok {
			span := hi - lo
			if d > span || d < -span {
				return false
			}
		}
	}
	return true
}

func constBounds(l ir.Loop) (lo, hi int, ok bool) {
	if len(l.Lo.Exprs) != 1 || len(l.Hi.Exprs) != 1 || !isConst(l.Lo.Exprs[0]) || !isConst(l.Hi.Exprs[0]) {
		return 0, 0, false
	}
	return l.Lo.Exprs[0].Const, l.Hi.Exprs[0].Const, true
}

// orient builds the dependence from raw distance dist (b's iteration
// minus a's), flipping it so the source executes first.
func orient(a, b ir.Ref, si, ri int, dist []int) Dependence {
	switch lexSign(dist) {
	case 1:
		// a executes first.
		return Dependence{Kind: kindOf(a.Store, b.Store), Array: a.Array, Src: si, Dst: ri, Dist: dist}
	case -1:
		neg := make([]int, len(dist))
		for i, v := range dist {
			neg[i] = -v
		}
		return Dependence{Kind: kindOf(b.Store, a.Store), Array: a.Array, Src: ri, Dst: si, Dist: neg}
	default:
		// Same iteration: program order decides (si precedes ri).
		return Dependence{Kind: kindOf(a.Store, b.Store), Array: a.Array, Src: si, Dst: ri, Dist: dist}
	}
}

// lexSign returns the sign of the lexicographically first nonzero
// component, or 0 for the zero vector.
func lexSign(d []int) int {
	for _, v := range d {
		if v > 0 {
			return 1
		}
		if v < 0 {
			return -1
		}
	}
	return 0
}

// PermutedSign returns the lexicographic sign of the dependence's
// distance under a loop permutation perm (perm[newPos] = oldPos) — the
// quantity interchange legality rests on.
func (d Dependence) PermutedSign(perm []int) int {
	for _, old := range perm {
		if d.Dist[old] > 0 {
			return 1
		}
		if d.Dist[old] < 0 {
			return -1
		}
	}
	return 0
}

// IssueStrings renders Issues deterministically for display.
func (t *Table) IssueStrings() []string {
	out := make([]string, len(t.Issues))
	for i, is := range t.Issues {
		out[i] = is.String()
	}
	sort.Strings(out)
	return out
}
