package repro

import (
	"fmt"
	"strings"

	"tiling3d/internal/core"
	"tiling3d/internal/deps"
	"tiling3d/internal/ir"
	"tiling3d/internal/transform"
)

// Certification checks: for every paper kernel and every selection
// method, the transformed nest must provably preserve the original's
// dependence structure (deps.Certify). These are not paper claims, so
// they run behind cmd/repro's -certify flag rather than inside RunAll.

// CertifyChecks returns one check per paper kernel covering every
// selection method.
func CertifyChecks() []Check {
	kernels := []struct {
		id   string
		nest *ir.Nest
	}{
		{"certify-jacobi", ir.JacobiNest(64, 16)},
		{"certify-resid", ir.ResidNest(64, 16)},
	}
	var out []Check
	for _, k := range kernels {
		nest := k.nest
		out = append(out, Check{
			ID:    k.id,
			Claim: "every selection method's plan certifies dependence-preserving",
			Run: func() (string, bool) {
				const cs, n = 2048, 64
				st, err := ir.Analyze(nest)
				if err != nil {
					return err.Error(), false
				}
				var certified []string
				for _, m := range core.AllMethods() {
					plan, err := core.SelectChecked(m, cs, n, n, st)
					if err != nil {
						return fmt.Sprintf("%s: select: %v", m, err), false
					}
					after, err := transform.ApplyPlan(nest, plan)
					if err != nil {
						return fmt.Sprintf("%s: apply: %v", m, err), false
					}
					if err := deps.Certify(nest, after); err != nil {
						return fmt.Sprintf("%s: %v", m, err), false
					}
					certified = append(certified, m.String())
				}
				return fmt.Sprintf("certified: %s", strings.Join(certified, ",")), true
			},
		})
	}
	return out
}

// RunCertify executes the certification checks.
func RunCertify() []Result {
	var out []Result
	for _, c := range CertifyChecks() {
		got, pass := c.Run()
		out = append(out, Result{ID: c.ID, Claim: c.Claim, Got: got, Pass: pass})
	}
	return out
}
