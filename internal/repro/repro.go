// Package repro encodes the paper's checkable claims as named,
// executable checks — the reproduction's self-test. Each check states
// the claim (in the paper's terms), runs the relevant piece of the
// library, and reports what it got; cmd/repro prints the table and
// fails if any check fails. The unit tests in each package are finer
// grained; these are the headline results.
package repro

import (
	"fmt"
	"math"

	"tiling3d/internal/analytic"
	"tiling3d/internal/bench"
	"tiling3d/internal/cache"
	"tiling3d/internal/core"
	"tiling3d/internal/mg"
	"tiling3d/internal/stencil"
	"tiling3d/internal/transform"

	"tiling3d/internal/ir"
)

// Result is one executed check.
type Result struct {
	ID    string
	Claim string
	Got   string
	Pass  bool
}

// Check is a named, executable claim.
type Check struct {
	ID    string
	Claim string
	Run   func() (got string, pass bool)
}

// quickOptions is the paper's configuration with a reduced sweep so the
// whole suite runs in seconds.
func quickOptions() bench.Options {
	opt := bench.DefaultOptions()
	opt.K = 12
	return opt
}

// Checks returns the full suite in presentation order.
func Checks() []Check {
	opt := quickOptions()
	return []Check{
		{
			ID:    "table1",
			Claim: "Table 1: non-conflicting tiles for 200x200xM, 16K cache",
			Run: func() (string, bool) {
				want := map[[3]int]bool{
					{1, 1, 2048}: true, {1, 10, 200}: true, {1, 41, 48}: true, {1, 256, 8}: true,
					{2, 1, 960}: true, {2, 4, 200}: true, {2, 5, 160}: true, {2, 15, 40}: true,
					{3, 5, 72}: true, {3, 11, 40}: true, {3, 15, 24}: true,
					{4, 4, 72}: true, {4, 15, 16}: true, {4, 56, 8}: true,
				}
				found := 0
				for _, t := range core.Euc3DArrayTiles(2048, 200, 200, 4) {
					if want[[3]int{t.TK, t.TJ, t.TI}] {
						found++
					}
				}
				return fmt.Sprintf("%d/14 listed tiles present", found), found == 14
			},
		},
		{
			ID:    "euc3d-example",
			Claim: "Section 3.3: Euc3D selects (22, 13) for 200x200xM",
			Run: func() (string, bool) {
				t, ok := core.Euc3D(2048, 200, 200, core.Jacobi6pt())
				return t.String(), ok && t.TI == 22 && t.TJ == 13
			},
		},
		{
			ID:    "gcdpad-example",
			Claim: "Section 3.4.1: GcdPad tile (32,16,4); 224<DI<=288 pads to 288",
			Run: func() (string, bool) {
				at := core.GcdPadArrayTile(2048, core.Jacobi6pt())
				p := core.GcdPad(2048, 250, 250, core.Jacobi6pt())
				got := fmt.Sprintf("tile %v, DI 250 -> %d", at, p.DI)
				return got, at == core.ArrayTile{TI: 32, TJ: 16, TK: 4} && p.DI == 288
			},
		},
		{
			ID:    "boundaries",
			Claim: "Section 1: reuse boundaries N=1024 (2D/16K), 32 (3D/16K), 362 (3D/2M)",
			Run: func() (string, bool) {
				a := bench.MaxN2D(cache.UltraSparc2L1())
				b := bench.MaxN3D(cache.UltraSparc2L1())
				c := bench.MaxN3D(cache.UltraSparc2L2())
				return fmt.Sprintf("%d, %d, %d", a, b, c), a == 1024 && b == 32 && c == 362
			},
		},
		{
			ID:    "orig-miss-rates",
			Claim: "Table 3: JACOBI original miss rates ~32.7% L1, ~6.3% L2",
			Run: func() (string, bool) {
				o := bench.DefaultOptions()
				o.K = 30
				p := bench.SimulatePoint(stencil.Jacobi, core.Orig, 300, o)
				got := fmt.Sprintf("L1 %.1f%%, L2 %.1f%%", p.L1, p.L2)
				return got, math.Abs(p.L1-32.7) < 4 && p.L2 > 3 && p.L2 < 9
			},
		},
		{
			ID:    "padding-beats-tiling-alone",
			Claim: "Table 3: GcdPad/Pad beat Tile/Euc3D beat Orig on L1 (all kernels)",
			Run: func() (string, bool) {
				// The paper's K=30 configuration. (With other K values
				// the padded per-array size can become a multiple of
				// the cache, aligning RESID's three arrays — see the
				// cross-alignment check below.)
				o := bench.DefaultOptions()
				for _, k := range stencil.Kernels() {
					orig := bench.SimulatePoint(k, core.Orig, 300, o).L1
					tile := bench.SimulatePoint(k, core.MethodTile, 300, o).L1
					gcd := bench.SimulatePoint(k, core.MethodGcdPad, 300, o).L1
					if !(gcd < tile && tile < orig) {
						return fmt.Sprintf("%v: orig %.1f, tile %.1f, gcdpad %.1f", k, orig, tile, gcd), false
					}
				}
				return "ordering holds for JACOBI, REDBLACK, RESID", true
			},
		},
		{
			ID:    "cross-alignment",
			Claim: "Section 3.5: inter-variable padding fixes cross-array alignment",
			Run: func() (string, bool) {
				// K=12 makes GcdPad's padded RESID arrays an exact
				// multiple of the cache (352*304*12 = 0 mod 2048): the
				// three arrays align and interfere. Spreading the bases
				// with core.CrossPlacement recovers the loss.
				o := quickOptions()
				plan := o.Plan(stencil.Resid, core.MethodGcdPad, 300)
				aligned := simulateWorkload(stencil.NewWorkload(stencil.Resid, 300, o.K, plan, o.Coeffs), o)
				sizes := []int{plan.DI * plan.DJ * o.K, plan.DI * plan.DJ * o.K, plan.DI * plan.DJ * o.K}
				gaps := core.CrossPlacement(o.CacheElems(), sizes)
				spread := simulateWorkload(stencil.NewWorkloadPlaced(stencil.Resid, 300, o.K, plan, o.Coeffs, gaps), o)
				got := fmt.Sprintf("aligned %.1f%%, inter-padded %.1f%%", aligned, spread)
				return got, spread < aligned-2
			},
		},
		{
			ID:    "spikes",
			Claim: "Figure 14: Orig spikes at pathological sizes; GcdPad stays flat",
			Run: func() (string, bool) {
				calm := bench.SimulatePoint(stencil.Jacobi, core.Orig, 300, opt).L1
				spike := bench.SimulatePoint(stencil.Jacobi, core.Orig, 256, opt).L1
				g1 := bench.SimulatePoint(stencil.Jacobi, core.MethodGcdPad, 300, opt).L1
				g2 := bench.SimulatePoint(stencil.Jacobi, core.MethodGcdPad, 256, opt).L1
				got := fmt.Sprintf("orig 300:%.1f 256:%.1f; gcdpad 300:%.1f 256:%.1f", calm, spike, g1, g2)
				return got, spike > calm+15 && math.Abs(g1-g2) < 3
			},
		},
		{
			ID:    "euc3d-pathological",
			Claim: "Section 3.4: at sizes like 341x341 Euc3D tiles are pathologically thin",
			Run: func() (string, bool) {
				t, ok := core.Euc3D(2048, 341, 341, core.Jacobi6pt())
				return t.String(), ok && (t.TI <= 6 || t.TJ <= 6)
			},
		},
		{
			ID:    "fig22-memory",
			Claim: "Figure 22: padding overhead ~14.7% (GcdPad) vs ~4.7% (Pad)",
			Run: func() (string, bool) {
				o := bench.DefaultOptions()
				gcd := bench.AverageMem(bench.MemorySeries(stencil.Jacobi, core.MethodGcdPad, 30, o))
				pad := bench.AverageMem(bench.MemorySeries(stencil.Jacobi, core.MethodPad, 30, o))
				got := fmt.Sprintf("GcdPad %.2f%%, Pad %.2f%%", gcd, pad)
				return got, gcd > 8 && gcd < 20 && pad < 8 && pad < gcd
			},
		},
		{
			ID:    "mgrid-identical",
			Claim: "Section 4.6: MGRID with tiled RESID computes identical results",
			Run: func() (string, bool) {
				res := mg.RunExperiment(4, 2, 2048, core.MethodGcdPad)
				return fmt.Sprintf("identical=%v, norm %.3e", res.Identical, res.FinalNorm), res.Identical
			},
		},
		{
			ID:    "mgrid-modest-l1",
			Claim: "Section 4.6: the 130^3 input has a modest ~6.8% RESID L1 miss rate",
			Run: func() (string, bool) {
				est := bench.MGridAmdahl(7, core.MethodGcdPad, 0.6, quickOptions(), bench.UltraSparc2Model())
				got := fmt.Sprintf("orig L1 %.2f%%", est.OrigL1)
				return got, est.OrigL1 > 4 && est.OrigL1 < 10
			},
		},
		{
			ID:    "mgrid-whole-app",
			Claim: "Section 4.6: ~6% whole-application improvement at 130^3",
			Run: func() (string, bool) {
				sim := mg.RunSimulatedExperiment(7, 2048, core.MethodGcdPad,
					cache.UltraSparc2L1(), cache.UltraSparc2L2(), 1, 8, 50)
				got := fmt.Sprintf("L1 %.2f%% -> %.2f%%, cycle-model %+.1f%%",
					sim.OrigL1, sim.TiledL1, sim.ImprovementPct)
				return got, sim.ImprovementPct > 1 && sim.ImprovementPct < 15 && sim.TiledL1 < sim.OrigL1
			},
		},
		{
			ID:    "copy-unprofitable",
			Claim: "Section 3.1: tile copying adds a large constant access fraction",
			Run: func() (string, bool) {
				f := stencil.CopyOverheadFraction(30, 14)
				return fmt.Sprintf("%.0f%% of accesses", 100*f), f > 0.1
			},
		},
		{
			ID:    "fusion-shift",
			Claim: "Figure 5/12: fusing compute with copy-back needs a one-plane shift",
			Run: func() (string, bool) {
				n1 := ir.JacobiNest(20, 12)
				i, j, k := ir.Var("I", 0), ir.Var("J", 0), ir.Var("K", 0)
				n2 := &ir.Nest{Loops: []ir.Loop{
					ir.SimpleLoop("K", 1, 10), ir.SimpleLoop("J", 1, 18), ir.SimpleLoop("I", 1, 18),
				}}
				n2.SetCompute(ir.Assign{
					LHS:   ir.Ref{Array: "B", Subs: []ir.Expr{i, j, k}},
					Terms: []ir.Term{{Coeff: "ONE", Refs: []ir.Ref{ir.Load("A", i, j, k)}}},
				})
				s, err := transform.MinLegalShift(n1, n2)
				return fmt.Sprintf("shift %d", s), err == nil && s == 1
			},
		},
		{
			ID:    "analytic-predictor",
			Claim: "Section 1 arithmetic: capacity model tracks the simulator off-spike",
			Run: func() (string, bool) {
				m := analytic.FromConfig(cache.UltraSparc2L1(), 8)
				pred := m.JacobiOrigMissRate(299)
				sim := bench.SimulatePoint(stencil.Jacobi, core.Orig, 299, opt).L1
				got := fmt.Sprintf("predicted %.1f%%, simulated %.1f%%", pred, sim)
				return got, math.Abs(pred-sim) < 6
			},
		},
	}
}

// simulateWorkload measures one workload's warm L1 miss rate.
func simulateWorkload(w *stencil.Workload, opt bench.Options) float64 {
	h := cache.MustHierarchy(opt.L1, opt.L2) //lint:allow mustcheck -- Options geometry validated upstream
	w.RunTrace(h)
	h.ResetStats()
	w.RunTrace(h)
	return h.Level(0).Stats().MissRate()
}

// RunAll executes every check.
func RunAll() []Result {
	var out []Result
	for _, c := range Checks() {
		got, pass := c.Run()
		out = append(out, Result{ID: c.ID, Claim: c.Claim, Got: got, Pass: pass})
	}
	return out
}
