package repro

import "testing"

// TestAllClaimsReproduce runs the whole claim suite; this is the
// repository's reproduction badge.
func TestAllClaimsReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("claim suite simulates full-size problems")
	}
	for _, r := range RunAll() {
		if !r.Pass {
			t.Errorf("%s: %s — got %s", r.ID, r.Claim, r.Got)
		} else {
			t.Logf("%s: %s", r.ID, r.Got)
		}
	}
}

func TestCheckIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range Checks() {
		if seen[c.ID] {
			t.Errorf("duplicate check ID %q", c.ID)
		}
		seen[c.ID] = true
		if c.Claim == "" || c.Run == nil {
			t.Errorf("check %q incomplete", c.ID)
		}
	}
}
