// Command mgrid runs the Section 4.6 whole-application experiment: a
// multigrid solver in the style of SPEC/NAS MGRID, timed with the
// original RESID and with RESID tiled (GcdPad) at the finest grid only.
// lm=7 corresponds to the SPEC reference size 130x130x130.
package main

import (
	"flag"
	"fmt"
	"os"

	"tiling3d/internal/cache"
	"tiling3d/internal/core"
	"tiling3d/internal/mg"
)

func main() {
	var (
		lm         = flag.Int("lm", 0, "log2 of the finest interior extent (overrides -class; 7 = 130^3 arrays)")
		iters      = flag.Int("iters", 0, "V-cycles to run (overrides -class)")
		class      = flag.String("class", "Ref", "problem class: S, W, Ref (SPEC reference) or A")
		cacheBytes = flag.Int("cache", 16384, "cache the tile selection targets (bytes)")
		methodName = flag.String("method", "GcdPad", "transformation for the finest-grid RESID")
		repeats    = flag.Int("repeats", 3, "experiment repetitions (best improvement reported)")
	)
	flag.Parse()
	cls, err := mg.ClassByName(*class)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *lm == 0 {
		*lm = cls.LM
	}
	if *iters == 0 {
		*iters = cls.Iterations
	}

	method, err := core.ParseMethod(*methodName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	fmt.Printf("MGRID-style multigrid, finest grid %d^3, %d V-cycles, RESID transformed with %s\n",
		(1<<*lm)+2, *iters, method)
	var best mg.ExperimentResult
	for rep := 0; rep < *repeats; rep++ {
		res := mg.RunExperiment(*lm, *iters, *cacheBytes/8, method)
		fmt.Printf("  run %d: orig %.3fs, tiled %.3fs, improvement %+.1f%%, identical=%v\n",
			rep+1, res.OrigSeconds, res.TiledSeconds, res.ImprovementPct, res.Identical)
		if rep == 0 || res.ImprovementPct > best.ImprovementPct {
			best = res
		}
	}
	fmt.Printf("tile %v, pads (+%d, +%d), final residual norm %.3e\n",
		best.Plan.Tile, best.Plan.DI-((1<<*lm)+2), best.Plan.DJ-((1<<*lm)+2), best.FinalNorm)
	fmt.Printf("best native improvement: %+.1f%% (host-dependent; paper reports 6%% on its UltraSparc2)\n",
		best.ImprovementPct)
	if *lm <= 7 {
		sim := mg.RunSimulatedExperiment(*lm, *cacheBytes/8, method,
			cache.UltraSparc2L1(), cache.UltraSparc2L2(), 1, 8, 50)
		fmt.Printf("simulated whole V-cycle on the paper's machine: L1 %.2f%% -> %.2f%%, cycle-model improvement %+.1f%%\n",
			sim.OrigL1, sim.TiledL1, sim.ImprovementPct)
	}
	if !best.Identical {
		fmt.Fprintln(os.Stderr, "ERROR: tiled run was not bit-identical to the original")
		os.Exit(1)
	}
}
