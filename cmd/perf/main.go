// Command perf regenerates the native performance figures (15, 17, 19 and
// 21): it sweeps problem sizes, times each kernel variant on the host
// CPU, and prints the MFlops series. Absolute numbers depend on the host;
// the comparison between methods is the reproduced result.
//
// Usage:
//
//	perf -kernel jacobi                # Figure 15
//	perf -kernel redblack              # Figure 17
//	perf -kernel resid                 # Figure 19
//	perf -kernel resid -min 400 -max 700   # Figure 21
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"tiling3d/internal/bench"
	"tiling3d/internal/core"
	"tiling3d/internal/profiling"
	"tiling3d/internal/stencil"
)

func main() {
	var (
		kernelName = flag.String("kernel", "jacobi", "kernel: jacobi, redblack or resid")
		nMin       = flag.Int("min", 200, "smallest problem size N")
		nMax       = flag.Int("max", 400, "largest problem size N")
		step       = flag.Int("step", 8, "problem size step")
		k          = flag.Int("k", 30, "third array extent")
		cacheBytes = flag.Int("cache", 16384, "cache capacity the tile selection targets (bytes)")
		methodList = flag.String("methods", "", "comma-separated methods (default: the paper's)")
		mode       = flag.String("mode", "model", "model: cycle-model MFlops from the simulated UltraSparc2 (reproduces the paper's shapes); native: wall-clock on this host")
		clock      = flag.Float64("clock", 0, "model clock in MHz (default 360, or 450 when -min >= 400 as in Figures 20-21)")
		svgPath    = flag.String("svg", "", "also write an SVG chart to this path")
		steady     = flag.Bool("steady", true, "steady-state plane-cycle detection for simulated paths (identical results)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	kernel, err := stencil.ParseKernel(*kernelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opt := bench.DefaultOptions()
	opt.NMin, opt.NMax, opt.NStep, opt.K = *nMin, *nMax, *step, *k
	opt.TargetElems = *cacheBytes / 8
	opt.DisableSteady = !*steady
	if *methodList != "" {
		opt.Methods = nil
		for _, name := range strings.Split(*methodList, ",") {
			m, err := core.ParseMethod(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			opt.Methods = append(opt.Methods, m)
		}
	}

	var sweep map[core.Method][]bench.PerfPoint
	var label string
	switch *mode {
	case "native":
		sweep = bench.PerfSweep(kernel, opt)
		label = "native"
	case "model":
		model := bench.UltraSparc2Model()
		if *nMin >= 400 {
			model = bench.UltraSparc2Model450()
		}
		if *clock > 0 {
			model.ClockMHz = *clock
		}
		sweep = bench.EstimateSweep(kernel, opt, model)
		label = fmt.Sprintf("cycle-model (%.0fMHz UltraSparc2)", model.ClockMHz)
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q (want model or native)\n", *mode)
		os.Exit(2)
	}
	if err := bench.WritePerfSeries(os.Stdout, kernel, label, sweep, opt.Methods, opt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		chart := bench.PerfChart(kernel, label, sweep, opt.Methods)
		if err := chart.WriteSVG(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *svgPath)
	}
}
