// Command perf regenerates the native performance figures (15, 17, 19 and
// 21): it sweeps problem sizes, times each kernel variant on the host
// CPU, and prints the MFlops series. Absolute numbers depend on the host;
// the comparison between methods is the reproduced result.
//
// Usage:
//
//	perf -kernel jacobi                # Figure 15
//	perf -kernel redblack              # Figure 17
//	perf -kernel resid                 # Figure 19
//	perf -kernel resid -min 400 -max 700   # Figure 21
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"tiling3d/internal/bench"
	"tiling3d/internal/cache"
	"tiling3d/internal/core"
	"tiling3d/internal/profiling"
	"tiling3d/internal/stencil"
)

func main() {
	var (
		kernelName = flag.String("kernel", "jacobi", "kernel: jacobi, redblack or resid")
		nMin       = flag.Int("min", 200, "smallest problem size N")
		nMax       = flag.Int("max", 400, "largest problem size N")
		step       = flag.Int("step", 8, "problem size step")
		k          = flag.Int("k", 30, "third array extent")
		cacheBytes = flag.Int("cache", 16384, "cache capacity the tile selection targets (bytes)")
		methodList = flag.String("methods", "", "comma-separated methods (default: the paper's)")
		mode       = flag.String("mode", "model", "model: cycle-model MFlops from the simulated UltraSparc2 (reproduces the paper's shapes); native: wall-clock on this host")
		clock      = flag.Float64("clock", 0, "model clock in MHz (default 360, or 450 when -min >= 400 as in Figures 20-21)")
		svgPath    = flag.String("svg", "", "also write an SVG chart to this path")
		steady     = flag.Bool("steady", true, "steady-state plane-cycle detection for simulated paths (identical results)")
		checkpoint = flag.String("checkpoint", "", "model mode: journal completed simulation points to this file (JSONL); native timings are nondeterministic and never journaled")
		resume     = flag.Bool("resume", false, "with -checkpoint: load already-completed points instead of recomputing them")
		pointTO    = flag.Duration("point-timeout", 0, "model mode: per-point watchdog; an expired point retries without the steady engine, then is marked FAIL (0 = off)")
		paranoid   = flag.Int("paranoid", 0, "model mode: cross-check every Nth point's steady-engine results against a full replay (0 = off)")
		injectN    = flag.Int("inject-panic", 0, "model mode: panic every simulation point with this N (demonstrates isolation)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
		workers    = flag.Int("workers", cache.DefaultWorkers(), "worker goroutines: simulation points in model mode, kernel tiles in native mode when -schedule is not serial")
		schedName  = flag.String("schedule", "serial", "native-mode kernel execution: serial, batch or wavefront (certified tile schedules; batch refuses kernels with carried dependences)")
		scaling    = flag.String("scaling", "", "comma-separated worker counts (e.g. 1,2,4,8): measure a native parallel scaling series at N=-max for each method, instead of the size sweep")
		scalingOut = flag.String("scaling-json", "", "with -scaling: also write the report as JSON (the BENCH_parallel.json shape) to this path")
	)
	flag.Parse()
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	kernel, err := stencil.ParseKernel(*kernelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sched, err := stencil.ParseScheduleMode(*schedName)
	if err != nil {
		fmt.Fprintln(os.Stderr, "perf:", err)
		os.Exit(2)
	}
	opt := bench.DefaultOptions()
	opt.NMin, opt.NMax, opt.NStep, opt.K = *nMin, *nMax, *step, *k
	opt.TargetElems = *cacheBytes / 8
	opt.DisableSteady = !*steady
	opt.Workers = *workers
	opt.ExecWorkers = *workers
	opt.ExecSchedule = sched
	if *methodList != "" {
		opt.Methods = nil
		for _, name := range strings.Split(*methodList, ",") {
			m, err := core.ParseMethod(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			opt.Methods = append(opt.Methods, m)
		}
	}

	// SIGINT/SIGTERM drain in-flight points, render the partial series,
	// and exit 0; a second signal hard-kills (stop() restores default
	// handling as soon as the context cancels).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	opt.Ctx = ctx
	opt.PointTimeout = *pointTO
	opt.ParanoidEvery = *paranoid
	opt.InjectPanicN = *injectN
	if err := opt.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "perf:", err)
		os.Exit(2)
	}

	if *scaling != "" {
		// A scaling series is always native wall-clock; -mode is ignored.
		counts, err := parseWorkerCounts(*scaling)
		if err != nil {
			fmt.Fprintln(os.Stderr, "perf:", err)
			os.Exit(2)
		}
		if sched == stencil.ScheduleSerial {
			fmt.Fprintln(os.Stderr, "perf: -scaling measures a parallel schedule; pass -schedule batch or -schedule wavefront")
			os.Exit(2)
		}
		if err := runScaling(kernel, sched, counts, opt, *scalingOut); err != nil {
			fmt.Fprintln(os.Stderr, "perf:", err)
			os.Exit(1)
		}
		return
	}

	var sweep map[core.Method][]bench.PerfPoint
	var label string
	interrupted := false
	switch *mode {
	case "native":
		// Native timings are nondeterministic, so there is nothing a
		// journal could replay bit-identically; cancellation just cuts
		// each series short.
		sweep = bench.PerfSweep(kernel, opt)
		label = "native"
		interrupted = ctx.Err() != nil
	case "model":
		if *checkpoint != "" {
			j, err := bench.OpenJournal(*checkpoint, opt, *resume)
			if err != nil {
				fmt.Fprintln(os.Stderr, "perf:", err)
				os.Exit(2)
			}
			opt.Journal = j
			if *resume && j.Resumed() > 0 {
				fmt.Fprintf(os.Stderr, "resuming: %d completed points loaded from %s\n", j.Resumed(), *checkpoint)
			}
		} else if *resume {
			fmt.Fprintln(os.Stderr, "perf: -resume requires -checkpoint")
			os.Exit(2)
		}
		model := bench.UltraSparc2Model()
		if *nMin >= 400 {
			model = bench.UltraSparc2Model450()
		}
		if *clock > 0 {
			model.ClockMHz = *clock
		}
		var serr error
		sweep, serr = bench.EstimateSweep(kernel, opt, model)
		interrupted = errors.Is(serr, context.Canceled)
		if serr != nil && !interrupted {
			fmt.Fprintln(os.Stderr, "perf:", serr)
			os.Exit(1)
		}
		label = fmt.Sprintf("cycle-model (%.0fMHz UltraSparc2)", model.ClockMHz)
	default:
		fmt.Fprintf(os.Stderr, "unknown -mode %q (want model or native)\n", *mode)
		os.Exit(2)
	}
	defer func() {
		if opt.Journal != nil {
			if werr := opt.Journal.WriteErr(); werr != nil {
				fmt.Fprintln(os.Stderr, "warning: checkpoint is incomplete:", werr)
			}
		}
		if interrupted {
			if opt.Journal != nil {
				fmt.Fprintf(os.Stderr, "interrupted: %d points checkpointed; resume with -resume -checkpoint %s\n",
					opt.Journal.Len(), *checkpoint)
			} else {
				fmt.Fprintln(os.Stderr, "interrupted: partial results shown")
			}
		}
	}()
	if err := bench.WritePerfSeries(os.Stdout, kernel, label, sweep, opt.Methods, opt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		chart := bench.PerfChart(kernel, label, sweep, opt.Methods)
		if err := chart.WriteSVG(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", *svgPath)
	}
}

// parseWorkerCounts parses the -scaling worker list ("1,2,4,8").
func parseWorkerCounts(s string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(s, ",") {
		w, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || w < 1 {
			return nil, fmt.Errorf("-scaling: worker counts must be integers >= 1, got %q", f)
		}
		out = append(out, w)
	}
	return out, nil
}

// runScaling measures one scaling series per method at N=NMax and prints
// the report, optionally also as JSON in the BENCH_parallel.json shape.
func runScaling(kernel stencil.Kernel, sched stencil.ScheduleMode, counts []int, opt bench.Options, jsonPath string) error {
	report := bench.ScalingReport{
		Description: fmt.Sprintf("native parallel MFlops of the certified %s schedule across worker counts; the 1-worker point is the schedule's serial linearization", sched),
		Host:        bench.HostDescription(),
		Date:        time.Now().Format("2006-01-02"),
	}
	for _, m := range opt.Methods {
		s, err := bench.MeasureScaling(kernel, m, opt.NMax, sched, counts, opt)
		if err != nil {
			return err
		}
		report.Series = append(report.Series, s)
	}
	if err := writeScalingReport(os.Stdout, report); err != nil {
		return err
	}
	if jsonPath != "" {
		b, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", jsonPath)
	}
	return nil
}

func writeScalingReport(w io.Writer, report bench.ScalingReport) error {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "# %s (%s)\n", report.Description, report.Host)
	for _, s := range report.Series {
		fmt.Fprintf(tw, "# %s %s N=%d K=%d %s (GOMAXPROCS=%d)\n",
			s.Kernel, s.Method, s.N, s.K, s.Schedule, s.GOMAXPROCS)
		fmt.Fprint(tw, "workers\tMFlops\tmedian\tspeedup\t\n")
		for _, p := range s.Points {
			fmt.Fprintf(tw, "%d\t%.1f\t%.1f\t%.2fx\t\n", p.Workers, p.MFlops, p.Median, p.Speedup)
		}
	}
	return tw.Flush()
}
