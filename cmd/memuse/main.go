// Command memuse regenerates Figure 22: the memory increase caused by
// GcdPad and Pad padding on JACOBI across the problem-size sweep, plus
// the paper's Section 4.5 cubic-array estimate.
package main

import (
	"flag"
	"fmt"
	"os"

	"tiling3d/internal/bench"
	"tiling3d/internal/core"
	"tiling3d/internal/stencil"
)

func main() {
	var (
		nMin = flag.Int("min", 200, "smallest problem size N")
		nMax = flag.Int("max", 400, "largest problem size N")
		step = flag.Int("step", 8, "problem size step")
		k    = flag.Int("k", 30, "third array extent of the measured configuration")
	)
	flag.Parse()

	opt := bench.DefaultOptions()
	opt.NMin, opt.NMax, opt.NStep = *nMin, *nMax, *step
	methods := []core.Method{core.MethodGcdPad, core.MethodPad}
	series := map[core.Method][]bench.MemPoint{}
	for _, m := range methods {
		series[m] = bench.MemorySeries(stencil.Jacobi, m, *k, opt)
	}
	if err := bench.WriteMemSeries(os.Stdout, series, methods, opt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\npaper's K=N estimate (pad bytes of the K=%d configuration over an N^3 array):\n", *k)
	for _, m := range methods {
		kn := bench.AverageMem(bench.MemorySeriesKNEstimate(stencil.Jacobi, m, *k, opt))
		fmt.Printf("  %-8s %.2f%%\n", m, kn)
	}
}
