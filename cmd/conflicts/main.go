// Command conflicts renders the paper's Figure 8: how an array tile's
// column segments map onto a direct-mapped cache, for the original and
// the padded array dimensions, making the self-interference visible.
//
//	conflicts -cache 2048 -di 256 -ti 32 -tj 16 -tk 4
package main

import (
	"flag"
	"fmt"
	"strings"

	"tiling3d/internal/core"
)

func main() {
	var (
		cs    = flag.Int("cache", 2048, "cache capacity in elements")
		di    = flag.Int("di", 256, "array leading dimension")
		dj    = flag.Int("dj", 256, "array second dimension")
		ti    = flag.Int("ti", 32, "array tile TI")
		tj    = flag.Int("tj", 16, "array tile TJ")
		tk    = flag.Int("tk", 4, "array tile TK")
		width = flag.Int("width", 128, "characters per map row")
	)
	flag.Parse()

	show := func(label string, d1, d2 int) {
		fmt.Printf("%s: %dx%dxM array, tile %dx%dx%d on %d-element cache\n", label, d1, d2, *ti, *tj, *tk, *cs)
		occ := make([]int, *cs)
		for k := 0; k < *tk; k++ {
			for j := 0; j < *tj; j++ {
				off := (j*d1 + k*d1*d2) % *cs
				for i := 0; i < *ti; i++ {
					occ[(off+i)%*cs]++
				}
			}
		}
		conflicts := 0
		cells := (*cs + *width - 1) / *width
		var b strings.Builder
		for c := 0; c < *cs; c += cells {
			maxOcc := 0
			for x := c; x < c+cells && x < *cs; x++ {
				if occ[x] > maxOcc {
					maxOcc = occ[x]
				}
			}
			switch {
			case maxOcc == 0:
				b.WriteByte('.')
			case maxOcc == 1:
				b.WriteByte('#')
			default:
				b.WriteByte('X')
			}
		}
		for _, o := range occ {
			if o > 1 {
				conflicts += o - 1
			}
		}
		fmt.Println("  [" + b.String() + "]")
		if conflicts == 0 {
			fmt.Println("  no self-interference: every tile element maps to its own location")
		} else {
			fmt.Printf("  %d conflicting element mappings (X marks overlap)\n", conflicts)
		}
		fmt.Println()
	}

	show("original", *di, *dj)
	st := core.Stencil{TrimI: 2, TrimJ: 2, Depth: *tk}
	p := core.GcdPad(*cs, *di, *dj, st)
	show(fmt.Sprintf("after GcdPad (+%d, +%d)", p.DI-*di, p.DJ-*dj), p.DI, p.DJ)
}
