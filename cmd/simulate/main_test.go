package main

import (
	"os"
	"os/exec"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

// TestSecondSigintHardKills pins the whole signal ladder end to end: the
// first SIGINT cancels the sweep and the process drains (the in-flight
// point — wedged here by -inject-sleep, which ignores cancellation —
// keeps it alive), and a second SIGINT falls through to the default
// handler and kills the process immediately with a non-zero status. The
// drain half of this contract is covered by the CI resilience-smoke job;
// this test covers the hard-kill half, which a wedged point makes
// reachable deterministically.
func TestSecondSigintHardKills(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and signals a child process")
	}
	dir := t.TempDir()
	bin := filepath.Join(dir, "simulate")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Env = os.Environ()
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}

	journal := filepath.Join(dir, "sweep.journal")
	cmd := exec.Command(bin,
		"-kernel", "jacobi", "-min", "200", "-max", "200", "-step", "8",
		"-methods", "Orig", "-workers", "1",
		"-inject-sleep", "30s", // every attempt wedges; only a hard kill ends this run
		"-checkpoint", journal)
	cmd.Stdout, cmd.Stderr = os.Stderr, os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The journal file appears just before the sweep dispatches its
	// first (wedged) point; once it exists the process is mid-sweep.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if _, err := os.Stat(journal); err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("journal never appeared; sweep did not start")
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(200 * time.Millisecond)

	waited := make(chan error, 1)
	go func() { waited <- cmd.Wait() }()

	// First SIGINT: the sweep drains. The wedged point ignores
	// cancellation, so the process must still be running.
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-waited:
		t.Fatalf("process exited on the first SIGINT instead of draining (err=%v)", err)
	case <-time.After(500 * time.Millisecond):
	}

	// Second SIGINT: default disposition, immediate death, non-zero.
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-waited:
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("second SIGINT produced a clean exit (err=%v), want non-zero", err)
		}
		ws, ok := ee.Sys().(syscall.WaitStatus)
		if !ok || !ws.Signaled() || ws.Signal() != syscall.SIGINT {
			t.Fatalf("want death by SIGINT, got %v", ee)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("process survived the second SIGINT; hard-kill path broken")
	}
}
