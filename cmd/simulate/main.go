// Command simulate regenerates the cache miss-rate figures (14, 16, 18
// and 20): it sweeps problem sizes, replays each kernel variant's address
// stream through the simulated 16K L1 / 2M L2 direct-mapped hierarchy,
// and prints the per-size miss-rate series.
//
// Usage:
//
//	simulate -kernel jacobi               # Figure 14
//	simulate -kernel redblack             # Figure 16
//	simulate -kernel resid                # Figure 18
//	simulate -kernel resid -min 400 -max 700   # Figure 20
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"tiling3d/internal/bench"
	"tiling3d/internal/cache"
	"tiling3d/internal/core"
	"tiling3d/internal/profiling"
	"tiling3d/internal/stencil"
)

func main() {
	var (
		kernelName = flag.String("kernel", "jacobi", "kernel: jacobi, redblack or resid")
		nMin       = flag.Int("min", 200, "smallest problem size N")
		nMax       = flag.Int("max", 400, "largest problem size N")
		step       = flag.Int("step", 8, "problem size step")
		k          = flag.Int("k", 30, "third array extent")
		methodList = flag.String("methods", "", "comma-separated methods (default: the paper's)")
		sweeps     = flag.Int("sweeps", 1, "measured sweeps per point")
		svgPath    = flag.String("svg", "", "also write SVG charts to <path>-l1.svg and <path>-l2.svg")
		asJSON     = flag.Bool("json", false, "emit the series as JSON instead of a table")
		workers    = flag.Int("workers", cache.DefaultWorkers(), "simulation worker goroutines (results are identical for any count)")
		steady     = flag.Bool("steady", true, "steady-state plane-cycle detection (identical results; -steady=false simulates every plane)")
		delta      = flag.Bool("delta", true, "cross-point delta simulation (identical results; -delta=false replays every sweep in full)")
		checkpoint = flag.String("checkpoint", "", "journal completed simulation points to this file (JSONL)")
		resume     = flag.Bool("resume", false, "with -checkpoint: load already-completed points instead of recomputing them")
		pointTO    = flag.Duration("point-timeout", 0, "per-point watchdog; an expired point retries without the steady engine, then is marked FAIL (0 = off)")
		paranoid   = flag.Int("paranoid", 0, "cross-check every Nth point's steady-engine results against a full replay (0 = off)")
		injectN    = flag.Int("inject-panic", 0, "fault injection: panic every simulation point with this N (demonstrates isolation)")
		injectZZZ  = flag.Duration("inject-sleep", 0, "fault injection: every simulation attempt sleeps this long first, ignoring cancellation (exercises the watchdog and signal paths)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	kernel, err := stencil.ParseKernel(*kernelName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opt := bench.DefaultOptions()
	opt.NMin, opt.NMax, opt.NStep, opt.K, opt.Sweeps = *nMin, *nMax, *step, *k, *sweeps
	opt.Workers = *workers
	opt.DisableSteady = !*steady
	opt.DisableDelta = !*delta
	if *methodList != "" {
		opt.Methods = nil
		for _, name := range strings.Split(*methodList, ",") {
			m, err := core.ParseMethod(strings.TrimSpace(name))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(2)
			}
			opt.Methods = append(opt.Methods, m)
		}
	}

	// SIGINT/SIGTERM drain in-flight points, render the partial series,
	// and exit 0; a second signal hard-kills (stop() restores default
	// handling as soon as the context cancels).
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()
	opt.Ctx = ctx
	opt.PointTimeout = *pointTO
	opt.ParanoidEvery = *paranoid
	opt.InjectPanicN = *injectN
	opt.InjectSleep = *injectZZZ
	if err := opt.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "simulate:", err)
		os.Exit(2)
	}
	if *checkpoint != "" {
		j, err := bench.OpenJournal(*checkpoint, opt, *resume)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simulate:", err)
			os.Exit(2)
		}
		opt.Journal = j
		if *resume && j.Resumed() > 0 {
			fmt.Fprintf(os.Stderr, "resuming: %d completed points loaded from %s\n", j.Resumed(), *checkpoint)
		}
	} else if *resume {
		fmt.Fprintln(os.Stderr, "simulate: -resume requires -checkpoint")
		os.Exit(2)
	}

	sweep, serr := bench.MissSweep(kernel, opt)
	interrupted := errors.Is(serr, context.Canceled)
	if serr != nil && !interrupted {
		fmt.Fprintln(os.Stderr, "simulate:", serr)
		os.Exit(1)
	}
	defer func() {
		if total, live := bench.AbandonedWorkers(); total > 0 {
			fmt.Fprintf(os.Stderr, "warning: the point watchdog abandoned %d simulation goroutine(s); %d still running at exit\n", total, live)
		}
		if opt.Journal != nil {
			if werr := opt.Journal.WriteErr(); werr != nil {
				fmt.Fprintln(os.Stderr, "warning: checkpoint is incomplete:", werr)
			}
		}
		if interrupted {
			if opt.Journal != nil {
				fmt.Fprintf(os.Stderr, "interrupted: %d points checkpointed; resume with -resume -checkpoint %s\n",
					opt.Journal.Len(), *checkpoint)
			} else {
				fmt.Fprintln(os.Stderr, "interrupted: partial results shown; use -checkpoint to make runs resumable")
			}
		}
	}()
	if *asJSON {
		byName := map[string][]bench.MissPoint{}
		for m, s := range sweep {
			byName[m.String()] = s
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(struct {
			Kernel string
			L1, L2 string
			Series map[string][]bench.MissPoint
		}{kernel.String(), opt.L1.String(), opt.L2.String(), byName}); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else if err := bench.WriteMissSeries(os.Stdout, kernel, sweep, opt.Methods, opt); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *svgPath != "" {
		for level := 1; level <= 2; level++ {
			name := fmt.Sprintf("%s-l%d.svg", *svgPath, level)
			f, err := os.Create(name)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			chart := bench.MissChart(kernel, sweep, opt.Methods, level)
			if err := chart.WriteSVG(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", name)
		}
	}
}
