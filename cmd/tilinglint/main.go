// Command tilinglint is the repo's multichecker: it runs the custom
// analyzers of internal/lint (mustcheck, rawindex) over the given
// packages and exits non-zero on findings.
//
//	tilinglint ./...
//	tilinglint internal/grid internal/stencil
//
// Deliberate exceptions are annotated in the source with
// `//lint:allow <analyzer>` on the same line or the line above.
package main

import (
	"fmt"
	"os"

	"tiling3d/internal/lint"
)

func main() {
	patterns := os.Args[1:]
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	findings, err := lint.Run(patterns, lint.Analyzers())
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "tilinglint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
