// Command tilinglint is the repo's multichecker: it loads and
// type-checks the given packages and runs the custom analyzers of
// internal/lint over them — the syntactic pair (mustcheck, rawindex)
// and the flow-sensitive settlement suite (settle, atomicwrite,
// ctxflow, degrademark).
//
//	tilinglint ./...
//	tilinglint -json ./... > findings.json
//	tilinglint -settle=false internal/advisor
//
// Deliberate exceptions are annotated in the source with
// `//lint:allow <analyzer> -- reason` on the same line or the line
// above; the driver itself audits those annotations (analyzer name
// required, justification required, stale allows flagged) and reports
// violations under the pseudo-analyzer "allow".
//
// Exit codes: 0 means no findings, 1 means findings were reported, and
// 2 means the run itself failed (unparseable pattern, unreadable
// package).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"tiling3d/internal/lint"
	"tiling3d/internal/lint/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	enabled := map[string]*bool{}
	for _, a := range lint.Analyzers() {
		enabled[a.Name] = flag.Bool(a.Name, true, "run the "+a.Name+" analyzer: "+a.Doc)
	}
	flag.Parse()

	var analyzers []*analysis.Analyzer
	for _, a := range lint.Analyzers() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, err := lint.Run(patterns, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "tilinglint: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
}
