// Command repro runs the reproduction self-test: every headline claim of
// the paper, executed against this library, with a pass/fail table. It
// exits non-zero if any claim fails.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"tiling3d/internal/repro"
)

func main() {
	certify := flag.Bool("certify", false, "also run dependence-preservation certification for every kernel x method")
	flag.Parse()

	results := repro.RunAll()
	if *certify {
		results = append(results, repro.RunCertify()...)
	}
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	failures := 0
	for _, r := range results {
		status := "PASS"
		if !r.Pass {
			status = "FAIL"
			failures++
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t%s\t\n", status, r.ID, r.Got, r.Claim)
	}
	tw.Flush()
	fmt.Printf("\n%d/%d claims reproduced\n", len(results)-failures, len(results))
	if failures > 0 {
		os.Exit(1)
	}
}
