// Command stencilvet is the dependence diagnostics tool: point it at a
// stencil listing (or a named built-in kernel) and it prints the loop
// nests, their dependence tables, per-array reuse classes, warnings for
// subscripts the analyzer cannot model (with source positions), and a
// tiling-legality verdict — the plan a selection method picks, applied
// and certified, or the named dependence that makes tiling illegal.
//
//	stencilvet -kernel jacobi
//	stencilvet -file sweep.st -params N=300,TSTEPS=10 -method Euc3D
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tiling3d/internal/core"
	"tiling3d/internal/deps"
	"tiling3d/internal/ir"
	"tiling3d/internal/lang"
	"tiling3d/internal/transform"
)

func main() {
	var (
		kernelName = flag.String("kernel", "", "built-in kernel: jacobi, resid or redblack")
		file       = flag.String("file", "", "stencil listing to analyze")
		paramsFlag = flag.String("params", "N=64,M=64,TSTEPS=8", "size parameters for -file, NAME=VALUE comma-separated")
		n          = flag.Int("n", 300, "problem size N for built-in kernels and the plan")
		k          = flag.Int("k", 30, "third array extent for built-in kernels")
		cacheBytes = flag.Int("cache", 16384, "target cache capacity (bytes) for the plan")
		methodName = flag.String("method", "Euc3D", "selection method for the legality verdict")
	)
	flag.Parse()

	method, err := core.ParseMethod(*methodName)
	if err != nil {
		fail(err)
	}

	nests, err := loadNests(*kernelName, *file, *paramsFlag, *n, *k)
	if err != nil {
		fail(err)
	}

	warnings := 0
	for idx, nest := range nests {
		if len(nests) > 1 {
			fmt.Printf("=== nest %d of %d ===\n", idx+1, len(nests))
		}
		fmt.Println(nest.String())
		warnings += vetNest(nest, method, *cacheBytes/8, *n)
		fmt.Println()
	}

	// Multi-nest programs: report the retiming each consecutive pair
	// needs to fuse legally.
	for i := 0; i+1 < len(nests); i++ {
		shift, binding, err := deps.MinFusionShift(nests[i], nests[i+1])
		switch {
		case err != nil:
			fmt.Printf("fusion of nests %d,%d: not analyzable: %v\n", i+1, i+2, err)
		case shift == 0:
			fmt.Printf("fusion of nests %d,%d: legal with no shift\n", i+1, i+2)
		default:
			fmt.Printf("fusion of nests %d,%d: minimum legal shift %d, bound by %s\n", i+1, i+2, shift, binding)
		}
	}

	if warnings > 0 {
		fmt.Fprintf(os.Stderr, "stencilvet: %d warning(s)\n", warnings)
		os.Exit(1)
	}
}

// vetNest prints the dependence table, reuse classes, warnings, and the
// tiling verdict for one nest; it returns the warning count.
func vetNest(nest *ir.Nest, method core.Method, cs, n int) int {
	tab, err := deps.Dependences(nest)
	if err != nil {
		fail(err)
	}
	fmt.Print(tab.String())

	classes, err := deps.ReuseClasses(nest)
	if err != nil {
		fail(err)
	}
	fmt.Print(deps.ReuseString(nest, classes))

	for _, w := range tab.IssueStrings() {
		fmt.Printf("warning: %s\n", w)
	}

	fmt.Printf("verdict: %s\n", verdict(nest, tab, method, cs, n))
	return len(tab.Issues)
}

// verdict runs the full pipeline — stencil analysis, plan selection,
// transformation, certification — and reports the outcome in one line.
func verdict(nest *ir.Nest, tab *deps.Table, method core.Method, cs, n int) string {
	if tab.HasUnknown() {
		for _, d := range tab.Deps {
			if d.Unknown {
				return fmt.Sprintf("tiling blocked: %s", d)
			}
		}
	}
	// Same conservative guard TileInner2 applies: any loop-carried
	// dependence makes the tile-reordered schedule unprovable.
	if carried := tab.Carried(); len(carried) > 0 {
		return fmt.Sprintf("tiling refused: nest carries %s", carried[0])
	}
	st, err := ir.Analyze(nest)
	if err != nil {
		return fmt.Sprintf("tiling not attempted: %v", err)
	}
	plan, err := core.SelectChecked(method, cs, n, n, st)
	if err != nil {
		return fmt.Sprintf("tiling not attempted: %v", err)
	}
	after, err := transform.ApplyPlan(nest, plan)
	if err != nil {
		return fmt.Sprintf("tiling illegal: %v", err)
	}
	if err := deps.Certify(nest, after); err != nil {
		return fmt.Sprintf("certification failed: %v", err)
	}
	if !plan.Tiled {
		return fmt.Sprintf("legal, untiled by %s (plan %v)", method, plan.Tile)
	}
	return fmt.Sprintf("tiling legal (certified): %s tile %v, array dims %dx%d", method, plan.Tile, plan.DI, plan.DJ)
}

// loadNests resolves the input: a named built-in kernel or a listing.
func loadNests(kernel, file, paramsFlag string, n, k int) ([]*ir.Nest, error) {
	switch {
	case kernel != "" && file != "":
		return nil, fmt.Errorf("stencilvet: -kernel and -file are mutually exclusive")
	case kernel != "":
		switch strings.ToLower(kernel) {
		case "jacobi":
			return []*ir.Nest{ir.JacobiNest(n, k)}, nil
		case "resid":
			return []*ir.Nest{ir.ResidNest(n, k)}, nil
		case "redblack":
			return []*ir.Nest{ir.RedBlackNest(n, k)}, nil
		default:
			return nil, fmt.Errorf("stencilvet: unknown kernel %q (jacobi, resid or redblack)", kernel)
		}
	case file != "":
		src, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		params, err := parseParams(paramsFlag)
		if err != nil {
			return nil, err
		}
		prog, err := lang.ParseProgramNamed(file, string(src), params)
		if err != nil {
			return nil, err
		}
		if prog.TimeVar != "" {
			fmt.Printf("time loop %s, %d steps, %d nest(s)\n\n", prog.TimeVar, prog.Steps, len(prog.Nests))
		}
		return prog.Nests, nil
	default:
		return nil, fmt.Errorf("stencilvet: pass -kernel or -file (try -kernel jacobi)")
	}
}

func parseParams(s string) (map[string]int, error) {
	params := map[string]int{}
	for _, kv := range strings.Split(s, ",") {
		kv = strings.TrimSpace(kv)
		if kv == "" {
			continue
		}
		name, val, ok := strings.Cut(kv, "=")
		if !ok {
			return nil, fmt.Errorf("stencilvet: bad -params entry %q (want NAME=VALUE)", kv)
		}
		v, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil {
			return nil, fmt.Errorf("stencilvet: bad -params value in %q: %v", kv, err)
		}
		params[strings.ToUpper(strings.TrimSpace(name))] = v
	}
	return params, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
