// Command experiments regenerates the paper's whole evaluation in one
// run: Table 1, Table 3, the miss-rate and performance series behind
// Figures 14–21, the Figure 22 memory overheads, the Section 1 reuse
// boundaries, and the Section 4.6 MGRID experiment. Select subsets with
// flags; -quick shrinks the sweeps for a fast smoke run.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sync"
	"syscall"
	"text/tabwriter"

	"tiling3d/internal/bench"
	"tiling3d/internal/cache"
	"tiling3d/internal/core"
	"tiling3d/internal/mg"
	"tiling3d/internal/profiling"
	"tiling3d/internal/results"
	"tiling3d/internal/stencil"
)

// interrupted flips when a sweep returns context.Canceled (SIGINT or
// SIGTERM): sections already gated off, partial tables rendered, and the
// process exits 0 after printing how to resume.
var interrupted bool

// sweepErr sorts a sweep error into the three outcomes: nil (done),
// cancellation (drain, remember, keep rendering partials), anything else
// (fail).
func sweepErr(err error) {
	if err == nil {
		return
	}
	if errors.Is(err, context.Canceled) {
		interrupted = true
		return
	}
	fail(err)
}

func main() {
	var (
		doTable1   = flag.Bool("table1", false, "Table 1: non-conflicting tile enumeration")
		doTable3   = flag.Bool("table3", false, "Table 3: average improvements")
		doFigures  = flag.Bool("figures", false, "Figures 14-19: per-size miss rates and MFlops")
		doLarge    = flag.Bool("large", false, "Figures 20-21: RESID at N=400-700")
		doMem      = flag.Bool("memuse", false, "Figure 22: padding memory overhead")
		doBoundary = flag.Bool("boundary", false, "Section 1 reuse boundaries")
		doMgrid    = flag.Bool("mgrid", false, "Section 4.6 MGRID experiment")
		doSens     = flag.Bool("sensitivity", false, "beyond the paper: associativity, cross-interference and 2D experiments")
		outDir     = flag.String("out", "", "also write SVG charts for the figure sweeps into this directory")
		savePath   = flag.String("save", "", "capture the headline numbers to this JSON snapshot")
		against    = flag.String("against", "", "compare the headline numbers against this JSON snapshot")
		tol        = flag.Float64("tol", 0.5, "comparison tolerance for -against (absolute)")
		all        = flag.Bool("all", false, "run everything")
		quick      = flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
		withPerf   = flag.Bool("perf", true, "include native wall-clock measurements")
		workers    = flag.Int("workers", cache.DefaultWorkers(), "simulation worker goroutines (results are identical for any count)")
		steady     = flag.Bool("steady", true, "steady-state plane-cycle detection (identical results; -steady=false simulates every plane)")
		warmShare  = flag.Bool("warmshare", true, "share results between sweep points with identical selection plans (identical results; -warmshare=false simulates every point)")
		delta      = flag.Bool("delta", true, "cross-point delta simulation: trace each point's warm sweep into phase records, replay measured sweeps from them, and seed plan-identical neighbors (identical results; -delta=false replays every sweep)")
		verbose    = flag.Bool("v", false, "per-point diagnostics on stderr: how each sweep point was resolved (simulated/shared/degraded) and steady-engine counters")
		checkpoint = flag.String("checkpoint", "", "journal completed simulation points to this file (JSONL)")
		resume     = flag.Bool("resume", false, "with -checkpoint: load already-completed points instead of recomputing them")
		pointTO    = flag.Duration("point-timeout", 0, "per-point watchdog; an expired point retries without the steady engine, then is marked FAIL (0 = off)")
		paranoid   = flag.Int("paranoid", 0, "cross-check every Nth point's steady-engine results against a full replay (0 = off)")
		injectN    = flag.Int("inject-panic", 0, "fault injection: panic every simulation point with this N (demonstrates isolation)")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fail(err)
	}
	defer stopProf()
	if *all {
		*doTable1, *doTable3, *doFigures, *doLarge, *doMem, *doBoundary, *doMgrid, *doSens = true, true, true, true, true, true, true, true
	}
	if !(*doTable1 || *doTable3 || *doFigures || *doLarge || *doMem || *doBoundary || *doMgrid || *doSens ||
		*savePath != "" || *against != "") {
		flag.Usage()
		os.Exit(2)
	}

	// SIGINT/SIGTERM cancel the sweeps: in-flight points drain, partial
	// tables render, and the process exits cleanly. A second signal
	// falls through to the default handler (hard kill) because stop()
	// runs as soon as the context cancels.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		stop()
	}()

	opt := bench.DefaultOptions()
	opt.Workers = *workers
	opt.DisableSteady = !*steady
	opt.DisableWarmShare = !*warmShare
	opt.DisableDelta = !*delta
	opt.Ctx = ctx
	opt.PointTimeout = *pointTO
	opt.ParanoidEvery = *paranoid
	opt.InjectPanicN = *injectN
	// Tally how each point was resolved for the end-of-run summary; with
	// -v also print every point. The hook runs on worker goroutines; the
	// mutex keeps lines whole and the counters consistent.
	var diagMu sync.Mutex
	var nShared, nDelta, nSim, nDegraded, nFailed int
	opt.DiagHook = func(d bench.PointDiag) {
		diagMu.Lock()
		switch {
		case d.Shared != "":
			nShared++
		case d.Failed:
			nFailed++
		case d.Degraded:
			nDegraded++
		case d.DeltaReused():
			nDelta++
		default:
			nSim++
		}
		if *verbose {
			fmt.Fprintln(os.Stderr, "point:", d)
		}
		diagMu.Unlock()
	}
	defer func() {
		diagMu.Lock()
		defer diagMu.Unlock()
		if n := nShared + nDelta + nSim + nDegraded + nFailed; n > 0 {
			fmt.Fprintf(os.Stderr, "points: %d total — %d shared, %d delta-replayed, %d fully simulated, %d degraded, %d failed\n",
				n, nShared, nDelta, nSim, nDegraded, nFailed)
		}
		if total, live := bench.AbandonedWorkers(); total > 0 {
			fmt.Fprintf(os.Stderr, "warning: the point watchdog abandoned %d simulation goroutine(s); %d still running at exit\n", total, live)
		}
	}()
	if *quick {
		opt.NStep = 50
	}
	if err := opt.Validate(); err != nil {
		usageFail(err)
	}
	if *checkpoint != "" {
		j, err := bench.OpenJournal(*checkpoint, opt, *resume)
		if err != nil {
			usageFail(err)
		}
		opt.Journal = j
		if *resume && j.Resumed() > 0 {
			fmt.Fprintf(os.Stderr, "resuming: %d completed points loaded from %s\n", j.Resumed(), *checkpoint)
		}
	} else if *resume {
		usageFail(errors.New("-resume requires -checkpoint"))
	}
	defer finish(opt, *checkpoint)

	if *doTable1 {
		fmt.Println("=== Table 1: non-conflicting array tiles (200x200xM, 16K cache) ===")
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "TK\tTJ\tTI\t")
		for _, t := range core.Euc3DArrayTilesParallel(2048, 200, 200, 4, *workers) {
			fmt.Fprintf(tw, "%d\t%d\t%d\t\n", t.TK, t.TJ, t.TI)
		}
		tw.Flush()
		tile, _ := core.Euc3D(2048, 200, 200, core.Jacobi6pt())
		fmt.Printf("Euc3D selection for a +/-1 stencil: %v (paper: (22, 13))\n\n", tile)
	}

	if *doBoundary && ctx.Err() == nil {
		fmt.Println("=== Section 1: reuse boundaries ===")
		fmt.Printf("2D stencil, 16K L1: group reuse preserved up to N = %d (paper: 1024)\n",
			bench.MaxN2D(cache.UltraSparc2L1()))
		fmt.Printf("3D stencil, 16K L1: up to N = %d (paper: 32)\n", bench.MaxN3D(cache.UltraSparc2L1()))
		fmt.Printf("3D stencil,  2M L2: up to N = %d (paper: 362)\n", bench.MaxN3D(cache.UltraSparc2L2()))
		p := bench.ProbeBoundary3D(cache.UltraSparc2L1(), 8, opt)
		fmt.Printf("simulated cliff at the L1 boundary: %.2f%% at N=%d vs %.2f%% at N=%d\n\n",
			p.MissBelow, p.NBelow, p.MissAbove, p.NAbove)
	}

	if *doTable3 && ctx.Err() == nil {
		fmt.Println("=== Table 3: average improvements over N=200..400 ===")
		rows, err := bench.Table3(opt, *withPerf)
		sweepErr(err)
		if err := bench.WriteTable3(os.Stdout, rows, opt.Methods); err != nil {
			fail(err)
		}
		fmt.Println()
	}

	if *doFigures && ctx.Err() == nil {
		figNum := map[stencil.Kernel][2]int{
			stencil.Jacobi: {14, 15}, stencil.RedBlack: {16, 17}, stencil.Resid: {18, 19},
		}
		for _, k := range stencil.Kernels() {
			if ctx.Err() != nil {
				break
			}
			fmt.Printf("=== Figures: %s ===\n", k)
			miss, est, err := bench.CombinedSweep(k, opt, bench.UltraSparc2Model())
			sweepErr(err)
			if miss == nil {
				break
			}
			if err := bench.WriteMissSeries(os.Stdout, k, miss, opt.Methods, opt); err != nil {
				fail(err)
			}
			if err := bench.WritePerfSeries(os.Stdout, k, "cycle-model (360MHz)", est, opt.Methods, opt); err != nil {
				fail(err)
			}
			if *outDir != "" {
				nums := figNum[k]
				saveSVG(*outDir, fmt.Sprintf("fig%d-l1.svg", nums[0]), bench.MissChart(k, miss, opt.Methods, 1))
				saveSVG(*outDir, fmt.Sprintf("fig%d-l2.svg", nums[0]), bench.MissChart(k, miss, opt.Methods, 2))
				saveSVG(*outDir, fmt.Sprintf("fig%d.svg", nums[1]), bench.PerfChart(k, "cycle-model", est, opt.Methods))
			}
			if *withPerf {
				if err := bench.WritePerfSeries(os.Stdout, k, "native", bench.PerfSweep(k, opt), opt.Methods, opt); err != nil {
					fail(err)
				}
			}
			fmt.Println()
		}
	}

	if *doLarge && ctx.Err() == nil {
		fmt.Println("=== Figures 20-21: RESID at larger sizes ===")
		large := opt
		large.NMin, large.NMax = 400, 700
		if *quick {
			large.NStep = 75
		} else {
			large.NStep = 12
		}
		missL, estL, err := bench.CombinedSweep(stencil.Resid, large, bench.UltraSparc2Model450())
		sweepErr(err)
		if missL == nil {
			missL, estL = map[core.Method][]bench.MissPoint{}, map[core.Method][]bench.PerfPoint{}
		}
		if err := bench.WriteMissSeries(os.Stdout, stencil.Resid, missL, large.Methods, large); err != nil {
			fail(err)
		}
		if err := bench.WritePerfSeries(os.Stdout, stencil.Resid, "cycle-model (450MHz)", estL, large.Methods, large); err != nil {
			fail(err)
		}
		if *outDir != "" {
			saveSVG(*outDir, "fig20-l1.svg", bench.MissChart(stencil.Resid, missL, large.Methods, 1))
			saveSVG(*outDir, "fig20-l2.svg", bench.MissChart(stencil.Resid, missL, large.Methods, 2))
			saveSVG(*outDir, "fig21.svg", bench.PerfChart(stencil.Resid, "cycle-model (450MHz)", estL, large.Methods))
		}
		if *withPerf {
			if err := bench.WritePerfSeries(os.Stdout, stencil.Resid, "native", bench.PerfSweep(stencil.Resid, large), large.Methods, large); err != nil {
				fail(err)
			}
		}
		fmt.Println()
	}

	if *doMem && ctx.Err() == nil {
		fmt.Println("=== Figure 22: memory increase from padding (JACOBI) ===")
		methods := []core.Method{core.MethodGcdPad, core.MethodPad}
		series := map[core.Method][]bench.MemPoint{}
		for _, m := range methods {
			series[m] = bench.MemorySeries(stencil.Jacobi, m, opt.K, opt)
		}
		if err := bench.WriteMemSeries(os.Stdout, series, methods, opt); err != nil {
			fail(err)
		}
		fmt.Println()
	}

	if (*savePath != "" || *against != "") && ctx.Err() == nil {
		fmt.Fprintln(os.Stderr, "capturing headline snapshot...")
		snap, err := results.Capture("cmd/experiments", opt)
		if errors.Is(err, context.Canceled) {
			interrupted = true
			return
		}
		if err != nil {
			fail(err)
		}
		if *savePath != "" {
			if err := results.Save(*savePath, snap); err != nil {
				fail(err)
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", *savePath)
		}
		if *against != "" {
			base, err := results.Load(*against)
			if err != nil {
				fail(err)
			}
			diffs := results.Compare(base, snap, *tol)
			if len(diffs) == 0 {
				fmt.Printf("headline numbers match %s within %.2f\n", *against, *tol)
			} else {
				fmt.Printf("%d deviations from %s (tol %.2f):\n", len(diffs), *against, *tol)
				for _, d := range diffs {
					fmt.Println("  " + d.String())
				}
				os.Exit(1)
			}
		}
	}

	if *doSens && ctx.Err() == nil {
		sensitivity(opt)
	}

	if *doMgrid && ctx.Err() == nil {
		fmt.Println("=== Section 4.6: MGRID ===")
		lm, iters := 7, 8
		if *quick {
			lm, iters = 5, 4
		}
		res := mg.RunExperiment(lm, iters, opt.CacheElems(), core.MethodGcdPad)
		fmt.Printf("finest grid %d^3, %d V-cycles: orig %.3fs, tiled %.3fs, native improvement %+.1f%%, identical=%v\n",
			(1<<lm)+2, iters, res.OrigSeconds, res.TiledSeconds, res.ImprovementPct, res.Identical)
		est := bench.MGridAmdahl(lm, core.MethodGcdPad, 0.60, opt, bench.UltraSparc2Model())
		fmt.Printf("simulated finest-grid RESID L1: orig %.2f%% (paper: 6.8%% at 130^3), tiled %.2f%%\n",
			est.OrigL1, est.TiledL1)
		fmt.Printf("cycle-model: RESID speedup %.2fx; whole-app estimate %+.1f%% (paper: 6%%; pathological sizes improve much more)\n\n",
			est.ResidSpeedup, est.AppImprovementPct)
	}
}

func sensitivity(opt bench.Options) {
	fmt.Println("=== Beyond the paper: sensitivity ===")
	fmt.Println("L1 associativity (JACOBI, N=256, pathological):")
	for _, p := range bench.AssocSensitivity(stencil.Jacobi, 256, []int{1, 2, 4, 8}, opt) {
		fmt.Printf("  %d-way: Orig %6.2f%%  Tile %6.2f%%  GcdPad %6.2f%%\n", p.Assoc, p.Orig, p.Tile, p.GcdPad)
	}
	fmt.Println("cross-interference (RESID, Section 3.5):")
	for _, n := range []int{256, 300, 341} {
		p := bench.CrossInterference(n, opt)
		fmt.Printf("  N=%d: Orig %6.2f%%  tiled back-to-back %6.2f%%  partitioned+inter-pad %6.2f%%\n",
			p.N, p.Orig, p.Default, p.Partitioned)
	}
	fmt.Println("2D Jacobi (tiling unnecessary below N=1024):")
	for _, p := range bench.TwoDSeries([]int{500, 900, 1000, 1100}, opt.L1, opt) {
		fmt.Printf("  N=%d: Orig %6.2f%%  tiled %6.2f%%\n", p.N, p.Orig, p.Tiled)
	}
	fmt.Println()
}

func saveSVG(dir, name string, chart interface {
	WriteSVG(w io.Writer) error
}) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		fail(err)
	}
	if err := chart.WriteSVG(f); err != nil {
		fail(err)
	}
	if err := f.Close(); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", path)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// usageFail reports a bad invocation (flag values, journal mismatch)
// without a stack trace and exits 2, the conventional usage-error code.
func usageFail(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(2)
}

// finish runs at exit on the normal path: it surfaces journal write
// failures (a stale checkpoint must not look like a good one) and, after
// an interrupt, says what completed and how to pick the run back up.
func finish(opt bench.Options, checkpoint string) {
	if opt.Journal != nil {
		if err := opt.Journal.WriteErr(); err != nil {
			fmt.Fprintln(os.Stderr, "warning: checkpoint is incomplete:", err)
		}
	}
	if !interrupted {
		return
	}
	if opt.Journal != nil {
		fmt.Fprintf(os.Stderr, "interrupted: %d points checkpointed; resume with -resume -checkpoint %s\n",
			opt.Journal.Len(), checkpoint)
	} else {
		fmt.Fprintln(os.Stderr, "interrupted: partial results shown; use -checkpoint to make runs resumable")
	}
}
