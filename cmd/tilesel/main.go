// Command tilesel runs the tile-size selection and padding algorithms for
// a given cache and array shape and prints what each method chooses —
// including the non-conflicting array-tile enumeration behind the paper's
// Table 1.
//
// Usage:
//
//	tilesel -cache 16384 -elem 8 -di 200 -dj 200 -trim 2 -depth 3 [-tiles]
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"tiling3d/internal/cache"
	"tiling3d/internal/core"
	"tiling3d/internal/profiling"
)

func main() {
	var (
		cacheBytes = flag.Int("cache", 16384, "cache capacity in bytes")
		elemSize   = flag.Int("elem", 8, "array element size in bytes")
		di         = flag.Int("di", 200, "array leading dimension (elements)")
		dj         = flag.Int("dj", 200, "array second dimension (elements)")
		trim       = flag.Int("trim", 2, "stencil reach per tiled dimension (m = n)")
		depth      = flag.Int("depth", 3, "array tile depth ATD")
		showTiles  = flag.Bool("tiles", false, "also print the non-conflicting array tiles (Table 1)")
		maxDepth   = flag.Int("maxdepth", 4, "deepest TK to enumerate with -tiles")
		workers    = flag.Int("workers", cache.DefaultWorkers(), "goroutines for the tile enumeration")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file on exit")
	)
	flag.Parse()
	stopProf, err := profiling.Start(*cpuProfile, *memProfile)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer stopProf()

	cs := *cacheBytes / *elemSize
	st := core.Stencil{TrimI: *trim, TrimJ: *trim, Depth: *depth}
	// Vet the flag-driven inputs once: every method below shares them,
	// and a friendly message beats a selection-algorithm panic. The
	// GcdPad family additionally needs a power-of-two cache size, which
	// is checked per method in the loop.
	if err := core.CheckSelect(core.Orig, cs, *di, *dj, st); err != nil {
		fmt.Fprintln(os.Stderr, "tilesel:", err)
		os.Exit(2)
	}
	fmt.Printf("cache: %d bytes = %d elements; array %dx%dxM; stencil trim %d, depth %d\n\n",
		*cacheBytes, cs, *di, *dj, *trim, *depth)

	if *showTiles {
		fmt.Println("non-conflicting array tiles (cf. Table 1):")
		tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
		fmt.Fprintln(tw, "TK\tTJ\tTI\t")
		for _, t := range core.Euc3DArrayTilesParallel(cs, *di, *dj, *maxDepth, *workers) {
			fmt.Fprintf(tw, "%d\t%d\t%d\t\n", t.TK, t.TJ, t.TI)
		}
		tw.Flush()
		fmt.Println()
	}

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "method\ttile TI\ttile TJ\tpad DI\tpad DJ\tcost\t")
	for _, m := range core.AllMethods() {
		p, err := core.SelectChecked(m, cs, *di, *dj, st)
		if err != nil {
			// Per-method precondition (e.g. GcdPad needs a power-of-two
			// cache size): report the method as unavailable, keep going.
			fmt.Fprintf(tw, "%s\t-\t-\t-\t-\t-\t\n", m)
			fmt.Fprintf(os.Stderr, "tilesel: %s skipped: %v\n", m, err)
			continue
		}
		ti, tj := "-", "-"
		if p.Tiled {
			ti, tj = fmt.Sprint(p.Tile.TI), fmt.Sprint(p.Tile.TJ)
		}
		cost := "-"
		if p.Tiled {
			cost = fmt.Sprintf("%.4f", p.Cost)
		}
		fmt.Fprintf(tw, "%s\t%s\t%s\t+%d\t+%d\t%s\t\n",
			m, ti, tj, p.DI-*di, p.DJ-*dj, cost)
	}
	tw.Flush()
}
