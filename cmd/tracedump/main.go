// Command tracedump exports a kernel variant's address trace in the
// classic Dinero "din" format (one "<label> <hex address>" pair per
// access: 0 = read, 1 = write), so the traces this library generates can
// be fed to external cache simulators for cross-validation.
//
//	tracedump -kernel jacobi -n 64 -method GcdPad | dineroIV -l1-dsize 16k ...
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"tiling3d/internal/core"
	"tiling3d/internal/stencil"
)

// dinWriter emits the din format. It implements cache.Memory.
type dinWriter struct {
	w     *bufio.Writer
	limit int64
	count int64
}

func (d *dinWriter) emit(label int, addr int64) {
	if d.limit > 0 && d.count >= d.limit {
		return
	}
	d.count++
	fmt.Fprintf(d.w, "%d %x\n", label, addr)
}

func (d *dinWriter) Load(addr int64)  { d.emit(0, addr) }
func (d *dinWriter) Store(addr int64) { d.emit(1, addr) }

func main() {
	var (
		kernelName = flag.String("kernel", "jacobi", "kernel: jacobi, redblack or resid")
		n          = flag.Int("n", 64, "problem size N (N x N x K)")
		k          = flag.Int("k", 16, "third array extent")
		methodName = flag.String("method", "Orig", "transformation")
		cacheBytes = flag.Int("cache", 16384, "cache the tile selection targets (bytes)")
		sweeps     = flag.Int("sweeps", 1, "kernel sweeps to trace")
		limit      = flag.Int64("limit", 0, "stop after this many accesses (0 = unlimited)")
	)
	flag.Parse()

	kernel, err := stencil.ParseKernel(*kernelName)
	if err != nil {
		fail(err)
	}
	method, err := core.ParseMethod(*methodName)
	if err != nil {
		fail(err)
	}
	plan, err := core.SelectChecked(method, *cacheBytes/8, *n, *n, kernel.Spec())
	if err != nil {
		fail(err)
	}
	w := stencil.NewWorkload(kernel, *n, *k, plan, stencil.DefaultCoeffs())

	out := &dinWriter{w: bufio.NewWriter(os.Stdout), limit: *limit}
	for s := 0; s < *sweeps; s++ {
		w.RunTrace(out)
	}
	if err := out.w.Flush(); err != nil {
		fail(err)
	}
	fmt.Fprintf(os.Stderr, "%d accesses (%s %s N=%d K=%d)\n", out.count, kernel, method, *n, *k)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
