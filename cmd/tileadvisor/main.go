// Command tileadvisor serves the fault-tolerant tiling-advisor API:
// POST /v1/plan returns a certified tiling plan, dependence table and
// predicted miss counts for one stencil program and cache geometry;
// POST /v1/sweep runs a journal-backed resumable sweep job; GET
// /healthz reports the breaker, cache and pool state.
//
// The server drains gracefully on SIGINT/SIGTERM: in-flight requests
// finish, running sweep jobs checkpoint at the next point boundary, and
// unfinished jobs resume on the next start (-journal-dir). A second
// signal kills the process immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tiling3d/internal/advisor"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tileadvisor:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:8357", "listen address")
	journalDir := flag.String("journal-dir", "", "directory for sweep-job journals (empty disables /v1/sweep)")
	cacheTTL := flag.Duration("cache-ttl", 10*time.Minute, "result cache entry lifetime")
	workers := flag.Int("workers", 4, "concurrent simulations")
	queue := flag.Int("queue", 8, "admission queue depth beyond the workers (overflow gets 429)")
	deadline := flag.Duration("deadline", 30*time.Second, "per-request budget for /v1/plan")
	pointTimeout := flag.Duration("point-timeout", 10*time.Second, "watchdog for one simulation attempt")
	jobWorkers := flag.Int("job-workers", 1, "per-sweep-job simulation parallelism")
	breakerFails := flag.Int("breaker-fails", 3, "consecutive backend failures that trip the circuit breaker")
	breakerCooldown := flag.Duration("breaker-cooldown", 15*time.Second, "open-breaker cooldown before a half-open probe")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful-shutdown budget")
	faults := flag.String("faults", "", "fault-injection script, e.g. 'sim:2=panic,job:3=torn' (testing)")
	flag.Parse()

	script, err := advisor.ParseFaultScript(*faults)
	if err != nil {
		return err
	}
	logger := log.New(os.Stderr, "tileadvisor: ", log.LstdFlags)
	srv := advisor.NewServer(advisor.Config{
		Workers:         *workers,
		Queue:           *queue,
		CacheTTL:        *cacheTTL,
		Deadline:        *deadline,
		PointTimeout:    *pointTimeout,
		BreakerFails:    *breakerFails,
		BreakerCooldown: *breakerCooldown,
		JournalDir:      *journalDir,
		JobWorkers:      *jobWorkers,
		Faults:          script,
		Log:             logger,
	})
	if resumed, err := srv.Resume(); err != nil {
		return fmt.Errorf("resuming journaled jobs: %w", err)
	} else if len(resumed) > 0 {
		logger.Printf("resumed %d unfinished sweep job(s): %v", len(resumed), resumed)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Print the bound address on stdout so scripts (and the CI smoke
	// test) can use :0 and discover the port.
	fmt.Printf("listening on %s\n", ln.Addr())

	httpSrv := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	// Restore default signal disposition immediately: the first signal
	// starts the drain, a second one kills the process the normal way.
	stop()
	logger.Printf("signal received; draining (timeout %v)", *drainTimeout)

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
	}
	if err := srv.Drain(drainCtx); err != nil {
		return fmt.Errorf("drain: %w", err)
	}
	logger.Printf("drained cleanly")
	return nil
}
