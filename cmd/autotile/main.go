// Command autotile is the end-to-end "compiler" demo: given a kernel,
// array shape and target cache, it selects a tile/padding plan, applies
// the tiling transformation to the kernel's loop-nest IR, and emits the
// resulting Go function — the code a source-to-source compiler built on
// this library would produce.
//
//	autotile -kernel jacobi -n 300 -cache 16384 -method Pad
package main

import (
	"flag"
	"fmt"
	"os"

	"tiling3d/internal/core"
	"tiling3d/internal/deps"
	"tiling3d/internal/ir"
	"tiling3d/internal/stencil"
	"tiling3d/internal/transform"
)

func main() {
	var (
		kernelName = flag.String("kernel", "jacobi", "kernel: jacobi or resid")
		n          = flag.Int("n", 300, "problem size N (N x N x K arrays)")
		k          = flag.Int("k", 30, "third array extent")
		cacheBytes = flag.Int("cache", 16384, "target cache capacity (bytes)")
		methodName = flag.String("method", "Pad", "selection method")
		showIR     = flag.Bool("ir", false, "also print the nest IR before and after tiling")
		certify    = flag.Bool("certify", false, "run the dependence certifier on the transformed nest")
	)
	flag.Parse()

	kernel, err := stencil.ParseKernel(*kernelName)
	if err != nil {
		fail(err)
	}
	var nest *ir.Nest
	var funcName string
	switch kernel {
	case stencil.Jacobi:
		nest, funcName = ir.JacobiNest(*n, *k), "jacobiTiled"
	case stencil.Resid:
		nest, funcName = ir.ResidNest(*n, *k), "residTiled"
	default:
		fail(fmt.Errorf("autotile: %v has data-dependent control flow the IR does not model; use jacobi or resid", kernel))
	}

	method, err := core.ParseMethod(*methodName)
	if err != nil {
		fail(err)
	}
	// Derive the stencil spec from the code itself, as a compiler would.
	st, err := ir.Analyze(nest)
	if err != nil {
		fail(err)
	}
	plan, err := core.SelectChecked(method, *cacheBytes/8, *n, *n, st)
	if err != nil {
		fail(err)
	}
	fmt.Printf("// analyzed stencil: trim (%d, %d), depth %d\n", st.TrimI, st.TrimJ, st.Depth)
	fmt.Printf("// %s plan: tile %v, array dims %dx%d (pads +%d, +%d)\n",
		method, plan.Tile, plan.DI, plan.DJ, plan.DI-*n, plan.DJ-*n)
	fmt.Printf("// pass the padded leading dimensions (%d, %d) as the array DI/DJ arguments\n\n",
		plan.DI, plan.DJ)

	if *showIR {
		fmt.Println("// original nest:")
		printCommented(nest.String())
	}
	tiled, err := transform.ApplyPlan(nest, plan)
	if err != nil {
		fail(err)
	}
	if *showIR {
		fmt.Println("// transformed nest:")
		printCommented(tiled.String())
	}
	if *certify {
		if err := deps.Certify(nest, tiled); err != nil {
			fail(err)
		}
		fmt.Println("// certified: the transformed nest preserves every dependence of the original")
	}
	src, err := transform.GenGo(tiled, funcName)
	if err != nil {
		fail(err)
	}
	fmt.Print(src)
}

func printCommented(s string) {
	for _, line := range splitLines(s) {
		fmt.Println("//   " + line)
	}
	fmt.Println()
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
