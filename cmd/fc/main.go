// Command fc is the end-to-end stencil compiler: it reads a Fortran-like
// stencil loop nest (the notation of the paper's figures), analyzes the
// references to derive the stencil footprint, selects a tile/padding plan
// for the target cache, applies the tiling transformation and emits the
// resulting Go function.
//
//	fc -param N=300 -cache 16384 -method Pad kernel.f
//	echo 'do K=2,N-1 ...' | fc -param N=300 -
//
// With -ir it also prints the nest before and after transformation; with
// -plan-only it stops after selection.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"tiling3d/internal/core"
	"tiling3d/internal/ir"
	"tiling3d/internal/lang"
	"tiling3d/internal/transform"
)

type paramList map[string]int

func (p paramList) String() string { return fmt.Sprint(map[string]int(p)) }

func (p paramList) Set(s string) error {
	name, val, ok := strings.Cut(s, "=")
	if !ok {
		return fmt.Errorf("want NAME=VALUE, got %q", s)
	}
	v, err := strconv.Atoi(val)
	if err != nil {
		return err
	}
	p[strings.TrimSpace(name)] = v
	return nil
}

func main() {
	params := paramList{}
	var (
		cacheBytes = flag.Int("cache", 16384, "target cache capacity (bytes)")
		elemSize   = flag.Int("elem", 8, "element size (bytes)")
		methodName = flag.String("method", "Pad", "selection method")
		funcName   = flag.String("func", "stencilTiled", "generated function name")
		showIR     = flag.Bool("ir", false, "print the IR before and after transformation")
		planOnly   = flag.Bool("plan-only", false, "stop after tile/padding selection")
	)
	flag.Var(params, "param", "size parameter NAME=VALUE (repeatable)")
	flag.Parse()

	src, err := readSource(flag.Arg(0))
	if err != nil {
		fail(err)
	}
	prog, err := lang.ParseProgram(src, params)
	if err != nil {
		fail(err)
	}
	if prog.TimeVar != "" {
		fmt.Printf("// time loop %s: %d steps (per-sweep code below; run it %d times)\n",
			prog.TimeVar, prog.Steps, prog.Steps)
	}
	if len(prog.Nests) == 2 {
		// The "realistic stencil code" pattern (Figure 5, middle): fuse
		// the two nests so one traversal performs both.
		compileFusedPair(prog, *funcName, *showIR)
		return
	}
	if len(prog.Nests) != 1 {
		fail(fmt.Errorf("fc: %d nests; only single nests and fusible pairs are supported", len(prog.Nests)))
	}
	nest := prog.Nests[0]
	st, err := ir.Analyze(nest)
	if err != nil {
		fail(err)
	}
	// The lower array dimensions come from the nest's two inner loop
	// extents plus the boundary the source leaves untouched.
	di, dj, err := lowerDims(nest, st)
	if err != nil {
		fail(err)
	}
	method, err := core.ParseMethod(*methodName)
	if err != nil {
		fail(err)
	}
	plan, err := core.SelectChecked(method, *cacheBytes / *elemSize, di, dj, st)
	if err != nil {
		fail(err)
	}
	fmt.Printf("// stencil: trims (%d, %d), array-tile depth %d; array %dx%dxM\n",
		st.TrimI, st.TrimJ, st.Depth, di, dj)
	fmt.Printf("// %s plan: tile %v, padded dims %dx%d (pads +%d, +%d)\n",
		method, plan.Tile, plan.DI, plan.DJ, plan.DI-di, plan.DJ-dj)
	if *planOnly {
		return
	}
	if *showIR {
		fmt.Println("// source nest:")
		comment(nest.String())
	}
	tiled, err := transform.ApplyPlan(nest, plan)
	if err != nil {
		fail(err)
	}
	if *showIR {
		fmt.Println("// transformed nest:")
		comment(tiled.String())
	}
	code, err := transform.GenGo(tiled, *funcName)
	if err != nil {
		fail(err)
	}
	fmt.Print(code)
}

// compileFusedPair handles the two-nest program: compute the minimum
// legal shift, fuse, and emit the fused function.
func compileFusedPair(prog *lang.Program, funcName string, showIR bool) {
	n1, n2 := prog.Nests[0], prog.Nests[1]
	shift, err := transform.MinLegalShift(n1, n2)
	if err != nil {
		fail(err)
	}
	fmt.Printf("// two nests: fusing with minimum legal shift %d\n\n", shift)
	if showIR {
		fmt.Println("// first nest:")
		comment(n1.String())
		fmt.Println("// second nest:")
		comment(n2.String())
	}
	fused, err := transform.FuseShifted(n1, n2, shift)
	if err != nil {
		fail(err)
	}
	code, err := fused.GenGo(funcName)
	if err != nil {
		fail(err)
	}
	fmt.Print(code)
}

// lowerDims infers the array extents in the two inner dimensions from
// the inner loops' ranges, re-adding the boundary layers the loop bounds
// exclude (a loop 1..n-2 over a +/-1 stencil implies extent n).
func lowerDims(n *ir.Nest, st core.Stencil) (di, dj int, err error) {
	if len(n.Loops) != 3 {
		return 0, 0, fmt.Errorf("fc: need a 3-deep nest, got %d loops", len(n.Loops))
	}
	extent := func(l ir.Loop, trim int) int {
		lo := l.Lo.Exprs[0].Const
		hi := l.Hi.Exprs[0].Const
		return hi - lo + 1 + trim
	}
	return extent(n.Loops[2], st.TrimI), extent(n.Loops[1], st.TrimJ), nil
}

func readSource(arg string) (string, error) {
	if arg == "" || arg == "-" {
		b, err := io.ReadAll(os.Stdin)
		return string(b), err
	}
	b, err := os.ReadFile(arg)
	return string(b), err
}

func comment(s string) {
	for _, line := range strings.Split(strings.TrimRight(s, "\n"), "\n") {
		fmt.Println("//   " + line)
	}
	fmt.Println()
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
