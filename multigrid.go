package tiling3d

import "tiling3d/internal/mg"

// Multigrid types: a NAS-MG-style V-cycle solver whose finest-grid RESID
// can be tiled and padded with a Plan (the paper's Section 4.6
// application).
type (
	// Multigrid is the V-cycle solver.
	Multigrid = mg.Solver
	// MultigridParams configures a solver.
	MultigridParams = mg.Params
	// MGExperimentResult reports the Section 4.6 timing experiment.
	MGExperimentResult = mg.ExperimentResult
)

// NewMultigrid builds a solver hierarchy; see MultigridParams.
func NewMultigrid(p MultigridParams) *Multigrid { return mg.New(p) }

// RunMGExperiment times the solver with original versus transformed
// RESID (Section 4.6).
func RunMGExperiment(lm, iterations, cs int, m Method) MGExperimentResult {
	return mg.RunExperiment(lm, iterations, cs, m)
}
