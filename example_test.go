package tiling3d_test

import (
	"fmt"

	"tiling3d"
)

// ExampleSelect reproduces the paper's Section 3.3 selection: the
// minimum-cost non-conflicting tile for a 200x200xM array and a 16K
// cache.
func ExampleSelect() {
	st := tiling3d.Stencil{TrimI: 2, TrimJ: 2, Depth: 3}
	plan := tiling3d.Select(tiling3d.MethodEuc3D, 2048, 200, 200, st)
	fmt.Println(plan.Tile)
	// Output: (TI=22, TJ=13)
}

// ExampleGcdPad shows the Section 3.4.1 padding: array dimensions grow
// to odd multiples of the power-of-two tile extents.
func ExampleGcdPad() {
	st := tiling3d.Stencil{TrimI: 2, TrimJ: 2, Depth: 3}
	plan := tiling3d.GcdPad(2048, 256, 256, st)
	fmt.Printf("tile %v, dims %dx%d\n", plan.Tile, plan.DI, plan.DJ)
	// Output: tile (TI=30, TJ=14), dims 288x272
}

// ExampleSelfConflicts demonstrates why 256x256 arrays are pathological
// for a 2048-element direct-mapped cache and padding fixes them.
func ExampleSelfConflicts() {
	fmt.Println(tiling3d.SelfConflicts(2048, 256, 256, 32, 16, 4))
	fmt.Println(tiling3d.SelfConflicts(2048, 288, 272, 32, 16, 4))
	// Output:
	// true
	// false
}

// ExampleNewWorkload runs a tiled kernel sweep and simulates its miss
// rate on the paper's memory system.
func ExampleNewWorkload() {
	st := tiling3d.Stencil{TrimI: 2, TrimJ: 2, Depth: 3}
	plan := tiling3d.Select(tiling3d.MethodGcdPad, 2048, 64, 64, st)
	w := tiling3d.NewWorkload(tiling3d.Jacobi, 64, 16, plan, tiling3d.DefaultCoeffs())
	w.RunNative()
	h := tiling3d.UltraSparc2()
	w.RunTrace(h)
	fmt.Println(h.Level(0).Stats().Accesses() == uint64(w.AccessCount()))
	// Output: true
}

// ExampleCost evaluates the paper's tile cost model: square tiles win.
func ExampleCost() {
	st := tiling3d.Stencil{TrimI: 2, TrimJ: 2, Depth: 3}
	square := tiling3d.Cost(tiling3d.Tile{TI: 16, TJ: 16}, st)
	thin := tiling3d.Cost(tiling3d.Tile{TI: 256, TJ: 1}, st)
	fmt.Println(square < thin)
	// Output: true
}

// ExampleBox7 derives selection inputs from a user-defined stencil.
func ExampleBox7() {
	shape := tiling3d.Box7(0.4, 0.1)
	st := shape.Spec()
	fmt.Printf("trims (%d,%d), depth %d\n", st.TrimI, st.TrimJ, st.Depth)
	// Output: trims (2,2), depth 3
}
