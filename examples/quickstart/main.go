// Quickstart: select a non-conflicting tile with padding for a 3D stencil
// and measure what it buys on this machine.
//
// The program mirrors the paper's core workflow: describe the stencil,
// let the Pad algorithm pick an iteration tile and padded array
// dimensions for the target cache, then run the 3D Jacobi kernel both
// ways and compare.
//
//	go run ./examples/quickstart [-n 300] [-cache 16384]
package main

import (
	"flag"
	"fmt"
	"time"

	"tiling3d"
)

func main() {
	n := flag.Int("n", 300, "problem size (N x N x 30 grids)")
	cacheBytes := flag.Int("cache", 16384, "cache capacity to tile for, in bytes")
	flag.Parse()

	// A 6-point +/-1 stencil: the array tile is 2 wider than the
	// iteration tile in I and J, and 3 planes must stay cached.
	st := tiling3d.Stencil{TrimI: 2, TrimJ: 2, Depth: 3}
	cs := *cacheBytes / 8 // cache capacity in float64 elements

	plan := tiling3d.Select(tiling3d.MethodPad, cs, *n, *n, st)
	fmt.Printf("Pad selected tile %v with array dims %dx%d (pads +%d, +%d), cost %.4f\n",
		plan.Tile, plan.DI, plan.DJ, plan.DI-*n, plan.DJ-*n, plan.Cost)

	coeffs := tiling3d.DefaultCoeffs()
	orig := tiling3d.NewWorkload(tiling3d.Jacobi, *n, 30, tiling3d.Select(tiling3d.Orig, cs, *n, *n, st), coeffs)
	tiled := tiling3d.NewWorkload(tiling3d.Jacobi, *n, 30, plan, coeffs)

	run := func(w *tiling3d.Workload) (time.Duration, float64) {
		w.RunNative() // warm up
		const sweeps = 10
		start := time.Now()
		for s := 0; s < sweeps; s++ {
			w.RunNative()
		}
		el := time.Since(start)
		return el / sweeps, float64(w.Flops()*sweeps) / el.Seconds() / 1e6
	}

	dOrig, mfOrig := run(orig)
	dTiled, mfTiled := run(tiled)
	fmt.Printf("original: %8v/sweep  %7.1f MFlops\n", dOrig.Round(time.Microsecond), mfOrig)
	fmt.Printf("tiled:    %8v/sweep  %7.1f MFlops  (%+.1f%%)\n",
		dTiled.Round(time.Microsecond), mfTiled, (mfTiled/mfOrig-1)*100)

	// Tiling reorders iterations but never changes results.
	if d := orig.Grids[0].MaxAbsDiff(tiled.Grids[0]); d != 0 {
		fmt.Printf("WARNING: results differ by %g\n", d)
	} else {
		fmt.Println("results identical: tiling only reordered the iterations")
	}

	// And the simulated view: miss rates on the paper's 16K/2M hierarchy.
	for label, w := range map[string]*tiling3d.Workload{"original": orig, "tiled+padded": tiled} {
		h := tiling3d.UltraSparc2()
		w.RunTrace(h)
		h.ResetStats()
		w.RunTrace(h)
		fmt.Printf("simulated %-13s L1 miss rate %5.2f%%\n", label+":", h.Level(0).Stats().MissRate())
	}
}
