// multigrid solves a Poisson problem with the MGRID-style V-cycle solver
// and demonstrates the paper's Section 4.6 transformation: tiling (and
// padding) the dominant RESID kernel at the finest grid only.
//
// The program solves -A u = v for a smooth right-hand side, reports the
// residual decay per V-cycle, then reruns with tiled RESID and shows the
// timing difference and that the iterates are bit-identical.
//
//	go run ./examples/multigrid [-lm 6] [-cycles 8]
package main

import (
	"flag"
	"fmt"
	"math"
	"time"

	"tiling3d"
)

func main() {
	lm := flag.Int("lm", 6, "log2 of finest interior size (6 = 66^3 arrays, 7 = SPEC's 130^3)")
	cycles := flag.Int("cycles", 8, "V-cycles")
	cacheBytes := flag.Int("cache", 16384, "cache to tile RESID for (bytes)")
	flag.Parse()

	rhs := func(i, j, k int) float64 {
		n := 1 << *lm
		h := 1.0 / float64(n+1)
		x, y, z := float64(i)*h, float64(j)*h, float64(k)*h
		return math.Sin(math.Pi*x) * math.Sin(2*math.Pi*y) * math.Sin(math.Pi*z)
	}

	solve := func(plan tiling3d.Plan) (*tiling3d.Multigrid, time.Duration) {
		s := tiling3d.NewMultigrid(tiling3d.MultigridParams{LM: *lm, Plan: plan})
		s.SetRHS(rhs)
		start := time.Now()
		s.Resid()
		fmt.Printf("  initial residual %.3e\n", s.ResidualNorm())
		for c := 1; c <= *cycles; c++ {
			s.VCycle()
			s.Resid()
			fmt.Printf("  after cycle %d: %.3e\n", c, s.ResidualNorm())
		}
		return s, time.Since(start)
	}

	fm := (1 << *lm) + 2
	fmt.Printf("original solver (%d^3 finest grid):\n", fm)
	orig, dOrig := solve(tiling3d.Plan{})

	plan := tiling3d.Select(tiling3d.MethodGcdPad, *cacheBytes/8, fm, fm,
		tiling3d.Stencil{TrimI: 2, TrimJ: 2, Depth: 3})
	fmt.Printf("tiled solver (RESID tile %v, finest dims %dx%d):\n", plan.Tile, plan.DI, plan.DJ)
	tiled, dTiled := solve(plan)

	fmt.Printf("orig %v, tiled %v (%+.1f%%)\n",
		dOrig.Round(time.Millisecond), dTiled.Round(time.Millisecond),
		(dOrig.Seconds()/dTiled.Seconds()-1)*100)
	if d := orig.Finest().MaxAbsDiff(tiled.Finest()); d == 0 {
		fmt.Println("solutions bit-identical: the transformation changed only the iteration order")
	} else {
		fmt.Printf("WARNING: solutions differ by %g\n", d)
	}
}
