// cacheexplorer visualizes why 3D stencils need tiling: it sweeps problem
// sizes across a cache's capacity boundary and prints the simulated miss
// rate of untiled versus tiled 3D Jacobi as text bars, showing the reuse
// cliff at N = sqrt(C_s/2) (Section 1 of the paper) and the conflict
// spikes at pathological sizes that padding removes.
//
//	go run ./examples/cacheexplorer [-cache 16384] [-line 32]
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"tiling3d"
)

func bar(pct float64) string {
	n := int(pct * 1.5)
	if n > 60 {
		n = 60
	}
	return strings.Repeat("#", n)
}

func main() {
	cacheBytes := flag.Int("cache", 16384, "cache capacity (bytes)")
	lineBytes := flag.Int("line", 32, "cache line size (bytes)")
	flag.Parse()

	cfg := tiling3d.CacheConfig{SizeBytes: *cacheBytes, LineBytes: *lineBytes, Assoc: 1}
	if _, err := tiling3d.NewHierarchy(cfg); err != nil {
		fmt.Println("invalid cache geometry:", err)
		os.Exit(2)
	}
	cs := cfg.Elems(8)
	boundary := int(math.Sqrt(float64(cs) / 2))
	fmt.Printf("cache %v holds %d doubles; 3D reuse boundary at N = %d\n\n", cfg, cs, boundary)
	fmt.Printf("%-6s %-28s %-28s\n", "N", "untiled L1 miss %", "tiled+padded (Pad) L1 miss %")

	st := tiling3d.Stencil{TrimI: 2, TrimJ: 2, Depth: 3}
	coeffs := tiling3d.DefaultCoeffs()
	simulate := func(n int, plan tiling3d.Plan) float64 {
		w := tiling3d.NewWorkload(tiling3d.Jacobi, n, 12, plan, coeffs)
		h := tiling3d.MustHierarchy(cfg) // vetted above
		w.RunTrace(h)
		h.ResetStats()
		w.RunTrace(h)
		return h.Level(0).Stats().MissRate()
	}

	// Sizes spanning the cliff and a few pathological ones beyond it.
	var sizes []int
	for n := boundary - 8; n <= boundary+8; n += 4 {
		sizes = append(sizes, n)
	}
	for n := 2 * boundary; n <= 10*boundary; n += 2 * boundary {
		sizes = append(sizes, n, n+3)
	}
	for _, n := range sizes {
		if n < 6 {
			continue
		}
		orig := simulate(n, tiling3d.Plan{DI: n, DJ: n})
		tiled := simulate(n, tiling3d.Select(tiling3d.MethodPad, cs, n, n, st))
		fmt.Printf("%-6d %6.2f %-21s %6.2f %-21s\n", n, orig, bar(orig), tiled, bar(tiled))
	}
	fmt.Println("\nuntiled rates jump past the boundary and spike at sizes that divide the")
	fmt.Println("cache; the Pad transformation keeps the rate low and flat throughout.")
}
