// customstencil demonstrates the generic stencil API: define an arbitrary
// weighted 3D stencil (here a 19-point anisotropic diffusion operator),
// derive the tile-selection inputs from its taps, and run it original
// versus tiled+padded with both simulated miss rates and host timing.
//
//	go run ./examples/customstencil [-n 300]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"tiling3d"
)

func main() {
	n := flag.Int("n", 300, "problem size (N x N x 30)")
	cacheBytes := flag.Int("cache", 16384, "cache to tile for (bytes)")
	flag.Parse()

	// A 19-point operator: center, faces and the 12 edge neighbors, with
	// anisotropic weights (stronger coupling in K).
	taps := []tiling3d.Tap{{DI: 0, DJ: 0, DK: 0, W: 0.40}}
	face := func(di, dj, dk int, w float64) { taps = append(taps, tiling3d.Tap{DI: di, DJ: dj, DK: dk, W: w}) }
	face(-1, 0, 0, 0.06)
	face(1, 0, 0, 0.06)
	face(0, -1, 0, 0.06)
	face(0, 1, 0, 0.06)
	face(0, 0, -1, 0.10)
	face(0, 0, 1, 0.10)
	for _, e := range [][3]int{
		{-1, -1, 0}, {1, -1, 0}, {-1, 1, 0}, {1, 1, 0},
		{0, -1, -1}, {0, 1, -1}, {0, -1, 1}, {0, 1, 1},
		{-1, 0, -1}, {1, 0, -1}, {-1, 0, 1}, {1, 0, 1},
	} {
		face(e[0], e[1], e[2], 0.013)
	}
	shape, err := tiling3d.NewShape(taps)
	if err != nil {
		log.Fatal(err)
	}

	// The selection inputs come straight from the taps.
	st := shape.Spec()
	fmt.Printf("19-point stencil: trims (%d, %d), array tile depth %d\n", st.TrimI, st.TrimJ, st.Depth)
	plan := tiling3d.Select(tiling3d.MethodPad, *cacheBytes/8, *n, *n, st)
	fmt.Printf("Pad plan: tile %v, dims %dx%d (pads +%d, +%d)\n\n",
		plan.Tile, plan.DI, plan.DJ, plan.DI-*n, plan.DJ-*n)

	mk := func(di, dj int) (*tiling3d.Grid3D, *tiling3d.Grid3D) {
		src := tiling3d.MustGrid3DPadded(*n, *n, 30, di, dj) // dims come from the Plan
		src.FillFunc(func(i, j, k int) float64 { return float64(i%7) - float64(j%5) + float64(k) })
		return src.Clone(), src
	}

	time3 := func(f func()) time.Duration {
		f() // warm up
		const reps = 5
		start := time.Now()
		for r := 0; r < reps; r++ {
			f()
		}
		return time.Since(start) / reps
	}

	dstO, srcO := mk(*n, *n)
	dO := time3(func() { shape.Apply(dstO, srcO) })
	dstT, srcT := mk(plan.DI, plan.DJ)
	dT := time3(func() { shape.ApplyTiled(dstT, srcT, plan.Tile.TI, plan.Tile.TJ) })
	fmt.Printf("native: original %v/sweep, tiled %v/sweep (%+.1f%%)\n",
		dO.Round(time.Microsecond), dT.Round(time.Microsecond),
		(dO.Seconds()/dT.Seconds()-1)*100)

	// Results must agree exactly over the common interior.
	var maxd float64
	for k := 1; k < 29; k++ {
		for j := 1; j <= *n-2; j++ {
			for i := 1; i <= *n-2; i++ {
				d := dstO.At(i, j, k) - dstT.At(i, j, k)
				if d < 0 {
					d = -d
				}
				if d > maxd {
					maxd = d
				}
			}
		}
	}
	fmt.Printf("max difference between variants: %g\n\n", maxd)

	// Simulated view on the paper's machine.
	for _, mode := range []struct {
		label string
		dst   *tiling3d.Grid3D
		src   *tiling3d.Grid3D
		plan  tiling3d.Plan
	}{
		{"original", dstO, srcO, tiling3d.Plan{DI: *n, DJ: *n}},
		{"tiled+padded", dstT, srcT, plan},
	} {
		h := tiling3d.UltraSparc2()
		shape.Trace(mode.dst, mode.src, h, mode.plan)
		h.ResetStats()
		shape.Trace(mode.dst, mode.src, h, mode.plan)
		fmt.Printf("simulated %-13s L1 miss rate %5.2f%%\n", mode.label+":", h.Level(0).Stats().MissRate())
	}
}
