// heat3d solves the 3D heat equation on a brick with fixed-temperature
// faces by explicit time stepping — the "realistic stencil code" pattern
// of the paper's Figure 5: two loop nests inside a time-step loop (update
// plus copy-back), which rules out time skewing and makes the paper's
// single-sweep tiling the applicable optimization.
//
// The update stencil is the 6-point average the paper's JACOBI kernel
// computes; the program runs the whole simulation untiled and tiled
// (Pad), checks the temperatures agree exactly, and reports the speedup
// and the temperature profile along the probe line.
//
//	go run ./examples/heat3d [-n 250] [-steps 40]
package main

import (
	"flag"
	"fmt"
	"time"

	"tiling3d"
)

// simulate runs `steps` explicit Euler steps: t' = t + alpha*(6-point
// Laplacian), expressed as the paper's Jacobi sweep on u into scratch
// followed by copy-back. plan controls tiling and padding.
func simulate(n, steps int, plan tiling3d.Plan) (*tiling3d.Grid3D, time.Duration) {
	u := tiling3d.MustGrid3DPadded(n, n, n, plan.DI, plan.DJ)
	scratch := tiling3d.MustGrid3DPadded(n, n, n, plan.DI, plan.DJ)
	// One hot face (k = 0) at 100 degrees, everything else cold.
	u.FillFunc(func(i, j, k int) float64 {
		if k == 0 {
			return 100
		}
		return 0
	})
	scratch.CopyLogical(u)

	w := &tiling3d.Workload{
		Kernel: tiling3d.Jacobi,
		N:      n, K: n,
		Plan:   plan,
		Coeffs: tiling3d.DefaultCoeffs(),
		Grids:  []*tiling3d.Grid3D{scratch, u},
	}
	start := time.Now()
	for s := 0; s < steps; s++ {
		w.RunNative()                                   // scratch = average of u's neighbors
		w.Grids[0], w.Grids[1] = w.Grids[1], w.Grids[0] // copy-back by swap
	}
	return w.Grids[1], time.Since(start)
}

func main() {
	n := flag.Int("n", 250, "grid size (N^3)")
	steps := flag.Int("steps", 40, "time steps")
	cacheBytes := flag.Int("cache", 16384, "cache to tile for (bytes)")
	flag.Parse()

	st := tiling3d.Stencil{TrimI: 2, TrimJ: 2, Depth: 3}
	origPlan := tiling3d.Select(tiling3d.Orig, *cacheBytes/8, *n, *n, st)
	tiledPlan := tiling3d.Select(tiling3d.MethodPad, *cacheBytes/8, *n, *n, st)
	fmt.Printf("heat3d: %d^3 grid, %d steps; tile %v, pads (+%d, +%d)\n",
		*n, *steps, tiledPlan.Tile, tiledPlan.DI-*n, tiledPlan.DJ-*n)

	uOrig, dOrig := simulate(*n, *steps, origPlan)
	uTiled, dTiled := simulate(*n, *steps, tiledPlan)

	fmt.Printf("untiled: %v\n", dOrig.Round(time.Millisecond))
	fmt.Printf("tiled:   %v  (%+.1f%%)\n", dTiled.Round(time.Millisecond),
		(dOrig.Seconds()/dTiled.Seconds()-1)*100)
	if d := uOrig.MaxAbsDiff(uTiled); d != 0 {
		fmt.Printf("WARNING: temperature fields differ by %g\n", d)
		return
	}
	fmt.Println("temperature along the center line away from the hot face:")
	mid := *n / 2
	for k := 0; k < *n; k += *n / 8 {
		fmt.Printf("  k=%3d  T=%7.3f\n", k, uOrig.At(mid, mid, k))
	}
}
