package tiling3d

import (
	"math"
	"testing"
)

// Tests of the public facade: everything an external adopter would call.

func TestSelectAllMethods(t *testing.T) {
	st := Stencil{TrimI: 2, TrimJ: 2, Depth: 3}
	for _, m := range []Method{Orig, MethodTile, MethodEuc3D, MethodGcdPad, MethodPad, MethodGcdPadNT, MethodLRW, MethodEffCache} {
		p := Select(m, 2048, 300, 300, st)
		if p.DI < 300 || p.DJ < 300 {
			t.Errorf("%v: plan shrank dims: %+v", m, p)
		}
		if p.Tiled && !p.Tile.Valid() {
			t.Errorf("%v: tiled plan with invalid tile: %+v", m, p)
		}
	}
}

func TestPublicSelectionExamples(t *testing.T) {
	st := Stencil{TrimI: 2, TrimJ: 2, Depth: 3}
	if tile, ok := Euc3D(2048, 200, 200, st); !ok || tile.TI != 22 || tile.TJ != 13 {
		t.Errorf("Euc3D example = %v, %v", tile, ok)
	}
	g := GcdPad(2048, 256, 256, st)
	if g.DI != 288 || g.DJ != 272 {
		t.Errorf("GcdPad(256,256) dims (%d,%d), want (288,272)", g.DI, g.DJ)
	}
	p := Pad(2048, 256, 256, st)
	if p.DI > g.DI || p.DJ > g.DJ {
		t.Errorf("Pad dims (%d,%d) exceed GcdPad (%d,%d)", p.DI, p.DJ, g.DI, g.DJ)
	}
	if Cost(Tile{TI: 22, TJ: 13}, st) <= 1 {
		t.Error("cost model must exceed 1 for finite tiles")
	}
	if !SelfConflicts(2048, 256, 256, 32, 16, 4) {
		t.Error("unpadded 256x256 tile must conflict")
	}
	if SelfConflicts(2048, 288, 272, 32, 16, 4) {
		t.Error("GcdPad-padded tile must not conflict")
	}
}

func TestPublicWorkloadRoundTrip(t *testing.T) {
	st := Stencil{TrimI: 2, TrimJ: 2, Depth: 3}
	plan := Select(MethodPad, 256, 24, 24, st)
	w := NewWorkload(Jacobi, 24, 8, plan, DefaultCoeffs())
	w.RunNative()
	h := UltraSparc2()
	w.RunTrace(h)
	if h.Level(0).Stats().Accesses() == 0 {
		t.Error("trace produced no accesses")
	}
	if got, want := h.Level(0).Config().Elems(8), 2048; got != want {
		t.Errorf("L1 elems = %d, want %d", got, want)
	}
}

func TestPublicGrids(t *testing.T) {
	g, err := NewGrid3DPadded(10, 10, 10, 13, 11)
	if err != nil {
		t.Fatal(err)
	}
	g.Set(9, 9, 9, 42)
	if g.At(9, 9, 9) != 42 {
		t.Error("grid round trip failed")
	}
	if NewGrid3D(4, 4, 4).Elems() != 64 {
		t.Error("unpadded grid size")
	}
}

func TestPublicMultigrid(t *testing.T) {
	s := NewMultigrid(MultigridParams{LM: 4})
	s.SetPointCharges(6)
	norm := s.Iterate(3)
	if norm <= 0 || math.IsNaN(norm) {
		t.Errorf("residual norm %g", norm)
	}
	res := RunMGExperiment(3, 2, 256, MethodGcdPad)
	if !res.Identical {
		t.Error("MG experiment not identical")
	}
}

func TestHierarchyConstruction(t *testing.T) {
	h, err := NewHierarchy(
		CacheConfig{SizeBytes: 1024, LineBytes: 32, Assoc: 1},
		CacheConfig{SizeBytes: 8192, LineBytes: 64, Assoc: 2, WriteAllocate: true},
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHierarchy(CacheConfig{SizeBytes: 100, LineBytes: 32, Assoc: 1}); err == nil {
		t.Error("non-power-of-two geometry not rejected")
	}
	h.Load(0)
	h.Load(0)
	var s CacheStats = h.Level(0).Stats()
	if s.Loads != 2 || s.LoadMisses != 1 {
		t.Errorf("stats %+v", s)
	}
}
