module tiling3d

go 1.22
