package tiling3d

// One benchmark per table and figure of the paper's evaluation, plus the
// ablations DESIGN.md calls out. Simulation benchmarks report the
// figure's metric (miss rates, model MFlops) via b.ReportMetric, so
// `go test -bench .` regenerates the headline numbers; the full per-size
// series come from cmd/simulate, cmd/perf, cmd/memuse, cmd/mgrid and
// cmd/experiments.

import (
	"fmt"
	"testing"

	"tiling3d/internal/bench"
	"tiling3d/internal/cache"
	"tiling3d/internal/core"
	"tiling3d/internal/mg"
	"tiling3d/internal/stencil"
)

// benchOpt is the paper's setup at one representative problem size per
// measurement (the CLI tools sweep the full 200..400 range).
func benchOpt() bench.Options {
	opt := bench.DefaultOptions()
	// A shorter third dimension keeps bench iterations fast. It must not
	// be a multiple of 4: GcdPad's padded plane is 512 elements mod the
	// 2048-element cache, so K = 0 mod 4 makes the padded per-array size
	// a cache multiple and aligns RESID's three arrays (see the
	// cross-alignment discussion in EXPERIMENTS.md). The paper's K=30
	// avoids it too.
	opt.K = 14
	return opt
}

// BenchmarkTable1Euc3D regenerates Table 1's enumeration and the
// Section 3.3 selection example.
func BenchmarkTable1Euc3D(b *testing.B) {
	for i := 0; i < b.N; i++ {
		tiles := core.Euc3DArrayTiles(2048, 200, 200, 4)
		if len(tiles) < 14 {
			b.Fatalf("only %d tiles", len(tiles))
		}
		t, _ := core.Euc3D(2048, 200, 200, core.Jacobi6pt())
		if t.TI != 22 || t.TJ != 13 {
			b.Fatalf("selection %v", t)
		}
	}
}

// simBench runs a simulated point and reports the figure metrics.
func simBench(b *testing.B, k stencil.Kernel, m core.Method, n int) {
	b.Helper()
	opt := benchOpt()
	var p bench.MissPoint
	for i := 0; i < b.N; i++ {
		p = bench.SimulatePoint(k, m, n, opt)
	}
	b.ReportMetric(p.L1, "L1miss%")
	b.ReportMetric(p.L2, "L2miss%")
}

// BenchmarkTable3 regenerates the Table 3 cells at N=300 for every
// kernel and transformation (averages over the sweep come from
// cmd/experiments -table3).
func BenchmarkTable3(b *testing.B) {
	for _, k := range stencil.Kernels() {
		for _, m := range core.PaperMethods() {
			b.Run(fmt.Sprintf("%s/%s", k, m), func(b *testing.B) {
				simBench(b, k, m, 300)
			})
		}
	}
}

// Figures 14, 16, 18: miss-rate curves. Each benchmark reproduces the
// curve's characteristic points: a mid-range size and a pathological one.
func BenchmarkFig14JacobiMiss(b *testing.B) {
	for _, n := range []int{256, 300, 362} {
		for _, m := range []core.Method{core.Orig, core.MethodTile, core.MethodGcdPad} {
			b.Run(fmt.Sprintf("N%d/%s", n, m), func(b *testing.B) { simBench(b, stencil.Jacobi, m, n) })
		}
	}
}

func BenchmarkFig16RedBlackMiss(b *testing.B) {
	for _, m := range []core.Method{core.Orig, core.MethodGcdPad, core.MethodPad} {
		b.Run(m.String(), func(b *testing.B) { simBench(b, stencil.RedBlack, m, 300) })
	}
}

func BenchmarkFig18ResidMiss(b *testing.B) {
	for _, m := range []core.Method{core.Orig, core.MethodGcdPad, core.MethodPad} {
		b.Run(m.String(), func(b *testing.B) { simBench(b, stencil.Resid, m, 300) })
	}
}

// estBench reports cycle-model MFlops (Figures 15/17/19/21).
func estBench(b *testing.B, k stencil.Kernel, m core.Method, n int, model bench.CycleModel) {
	b.Helper()
	opt := benchOpt()
	var p bench.PerfPoint
	for i := 0; i < b.N; i++ {
		p = bench.EstimatePoint(k, m, n, opt, model)
	}
	b.ReportMetric(p.MFlops, "modelMFlops")
}

func BenchmarkFig15JacobiPerf(b *testing.B) {
	for _, m := range []core.Method{core.Orig, core.MethodEuc3D, core.MethodGcdPad} {
		b.Run(m.String(), func(b *testing.B) {
			estBench(b, stencil.Jacobi, m, 300, bench.UltraSparc2Model())
		})
	}
}

func BenchmarkFig17RedBlackPerf(b *testing.B) {
	for _, m := range []core.Method{core.Orig, core.MethodGcdPad} {
		b.Run(m.String(), func(b *testing.B) {
			estBench(b, stencil.RedBlack, m, 300, bench.UltraSparc2Model())
		})
	}
}

func BenchmarkFig19ResidPerf(b *testing.B) {
	for _, m := range []core.Method{core.Orig, core.MethodGcdPad} {
		b.Run(m.String(), func(b *testing.B) {
			estBench(b, stencil.Resid, m, 300, bench.UltraSparc2Model())
		})
	}
}

// Figures 20-21: larger RESID sizes on the 450 MHz model.
func BenchmarkFig20ResidLargeMiss(b *testing.B) {
	for _, m := range []core.Method{core.Orig, core.MethodGcdPad} {
		b.Run(m.String(), func(b *testing.B) { simBench(b, stencil.Resid, m, 500) })
	}
}

func BenchmarkFig21ResidLargePerf(b *testing.B) {
	for _, m := range []core.Method{core.Orig, core.MethodGcdPad} {
		b.Run(m.String(), func(b *testing.B) {
			estBench(b, stencil.Resid, m, 500, bench.UltraSparc2Model450())
		})
	}
}

// BenchmarkFig22Memory reports the average padding overheads.
func BenchmarkFig22Memory(b *testing.B) {
	opt := bench.DefaultOptions()
	var gcd, pad float64
	for i := 0; i < b.N; i++ {
		gcd = bench.AverageMem(bench.MemorySeries(stencil.Jacobi, core.MethodGcdPad, 30, opt))
		pad = bench.AverageMem(bench.MemorySeries(stencil.Jacobi, core.MethodPad, 30, opt))
	}
	b.ReportMetric(gcd, "GcdPad%")
	b.ReportMetric(pad, "Pad%")
}

// BenchmarkMGRID times the Section 4.6 application with original and
// tiled RESID (native wall-clock; one V-cycle per iteration).
func BenchmarkMGRID(b *testing.B) {
	const lm = 6
	fm := (1 << lm) + 2
	plans := map[string]core.Plan{
		"Orig":   {},
		"GcdPad": core.Select(core.MethodGcdPad, 2048, fm, fm, stencil.Resid.Spec()),
	}
	for name, plan := range plans {
		b.Run(name, func(b *testing.B) {
			s := mg.New(mg.Params{LM: lm, Plan: plan})
			s.SetPointCharges(16)
			s.Resid()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.VCycle()
			}
		})
	}
}

// BenchmarkAblationCopy measures Section 3.1's claim: tile copying adds
// a large constant overhead for stencils.
func BenchmarkAblationCopy(b *testing.B) {
	n := 300
	plan := core.GcdPad(2048, n, n, core.Jacobi6pt())
	w := stencil.NewWorkload(stencil.Jacobi, n, 16, plan, stencil.DefaultCoeffs())
	b.Run("TiledInPlace", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stencil.JacobiTiled(w.Grids[0], w.Grids[1], 1.0/6, plan.Tile.TI, plan.Tile.TJ)
		}
	})
	b.Run("TiledWithCopy", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			stencil.JacobiCopyTiled(w.Grids[0], w.Grids[1], 1.0/6, plan.Tile.TI, plan.Tile.TJ)
		}
	})
	b.Run("CopyTrafficFraction", func(b *testing.B) {
		var f float64
		for i := 0; i < b.N; i++ {
			f = stencil.CopyOverheadFraction(plan.Tile.TI, plan.Tile.TJ)
		}
		b.ReportMetric(100*f, "copy%")
	})
}

// BenchmarkAblationThreeLoop measures Section 2.2's claim: tiling all
// three loops (Wolf-Lam shape) loses reuse at every KK boundary compared
// to tiling only J and I.
func BenchmarkAblationThreeLoop(b *testing.B) {
	n := 300
	plan := core.GcdPad(2048, n, n, core.Jacobi6pt())
	w := stencil.NewWorkload(stencil.Jacobi, n, 16, plan, stencil.DefaultCoeffs())
	run := func(b *testing.B, trace func(mem cache.Memory)) {
		var rate float64
		for i := 0; i < b.N; i++ {
			h := cache.MustHierarchy(cache.UltraSparc2L1())
			trace(h)
			h.ResetStats()
			trace(h)
			rate = h.Level(0).Stats().MissRate()
		}
		b.ReportMetric(rate, "L1miss%")
	}
	b.Run("TwoLoops", func(b *testing.B) {
		run(b, func(mem cache.Memory) {
			stencil.JacobiTiledTrace(w.Grids[0], w.Grids[1], mem, plan.Tile.TI, plan.Tile.TJ)
		})
	})
	b.Run("ThreeLoops", func(b *testing.B) {
		run(b, func(mem cache.Memory) {
			stencil.JacobiTiled3LoopTrace(w.Grids[0], w.Grids[1], mem, plan.Tile.TI, plan.Tile.TJ, 4)
		})
	})
}

// BenchmarkAblationRecursive compares cache-oblivious recursion (related
// work: Gatlin-Carter, Yi-Adve-Kennedy) against explicit tiling+padding
// at a friendly and a pathological size.
func BenchmarkAblationRecursive(b *testing.B) {
	opt := benchOpt()
	for _, n := range []int{300, 256} {
		b.Run(fmt.Sprintf("Recursive/N%d", n), func(b *testing.B) {
			w := stencil.NewWorkload(stencil.Jacobi, n, opt.K,
				core.Plan{DI: n, DJ: n}, opt.Coeffs)
			var rate float64
			for i := 0; i < b.N; i++ {
				h := cache.MustHierarchy(opt.L1)
				stencil.JacobiRecursiveTrace(w.Grids[0], w.Grids[1], h, 24)
				h.ResetStats()
				stencil.JacobiRecursiveTrace(w.Grids[0], w.Grids[1], h, 24)
				rate = h.Level(0).Stats().MissRate()
			}
			b.ReportMetric(rate, "L1miss%")
		})
		b.Run(fmt.Sprintf("GcdPad/N%d", n), func(b *testing.B) {
			simBench(b, stencil.Jacobi, core.MethodGcdPad, n)
		})
	}
}

// BenchmarkAblationBaselines compares the extra baselines' miss rates.
func BenchmarkAblationBaselines(b *testing.B) {
	for _, m := range []core.Method{core.MethodEffCache, core.MethodLRW, core.MethodGcdPad} {
		b.Run(m.String(), func(b *testing.B) { simBench(b, stencil.Jacobi, m, 300) })
	}
}

// BenchmarkAblationAssoc quantifies how associativity erodes the
// conflict-miss motivation: the Tile-vs-GcdPad gap at 1-, 2- and 4-way.
func BenchmarkAblationAssoc(b *testing.B) {
	opt := benchOpt()
	for _, a := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("assoc-%d", a), func(b *testing.B) {
			var pts []bench.AssocPoint
			for i := 0; i < b.N; i++ {
				pts = bench.AssocSensitivity(stencil.Jacobi, 256, []int{a}, opt)
			}
			b.ReportMetric(pts[0].Tile-pts[0].GcdPad, "gap-pp")
		})
	}
}

// BenchmarkSelectionAlgorithms measures planning cost: the efficiency
// argument of Sections 3.3-3.4 (Euc3D and GcdPad are cheap; Pad searches;
// Panda-style exhaustive testing pays per conflict test).
func BenchmarkSelectionAlgorithms(b *testing.B) {
	st := core.Jacobi6pt()
	b.Run("Euc3D", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Euc3D(2048, 341, 341, st)
		}
	})
	b.Run("GcdPad", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.GcdPad(2048, 341, 341, st)
		}
	})
	b.Run("Pad", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.Pad(2048, 341, 341, st)
		}
	})
	b.Run("PandaPad", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			core.PandaPad(2048, 341, 341, st)
		}
	})
}

// BenchmarkCacheSimThroughput measures the simulator itself.
func BenchmarkCacheSimThroughput(b *testing.B) {
	h := cache.UltraSparc2()
	b.Run("sequential", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.Load(int64(i) * 8)
		}
	})
	b.Run("strided", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			h.Load(int64(i) * 2048)
		}
	})
}

// BenchmarkReplayRuns measures the batched replay engine against the
// per-access path on the ISSUE's headline microbenchmark: one Jacobi
// sweep at N=256, K=30, simulated through the UltraSparc2 hierarchy.
// Orig is the conflict-heavy untiled stream; GcdPad is the padded+tiled
// stream; GcdPadNT (padding without tiling) has full-row runs, where the
// per-run setup amortizes over ~64 lines and batching pays off most.
// Metrics are simulated Maccess/s and ns/access.
func BenchmarkReplayRuns(b *testing.B) {
	n, k := 256, 30
	for _, m := range []core.Method{core.Orig, core.MethodGcdPad, core.MethodGcdPadNT} {
		plan := core.Select(m, 2048, n, n, stencil.Jacobi.Spec())
		w := stencil.NewTraceWorkload(stencil.Jacobi, n, k, plan)
		accesses := float64(w.AccessCount())
		b.Run(m.String()+"/PerAccess", func(b *testing.B) {
			h := cache.UltraSparc2()
			w.RunTrace(h) // warm
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.RunTrace(h)
			}
			reportAccessRate(b, accesses)
		})
		b.Run(m.String()+"/Batched", func(b *testing.B) {
			h := cache.UltraSparc2()
			w.ReplayTrace(h) // warm
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.ReplayTrace(h)
			}
			reportAccessRate(b, accesses)
		})
	}
}

// BenchmarkSteady measures the steady-state plane-cycle engine against
// full batched simulation on one Jacobi sweep. The warm sweep pays the
// observation cost (recording per-plane patterns, fingerprinting state);
// from then on the engine recognises the cycle almost immediately and
// extrapolates the remaining planes, so steady-state sweeps cost a small
// fixed number of simulated planes regardless of depth. Results are
// bit-identical either way (TestSteadyDifferential* prove it).
func BenchmarkSteady(b *testing.B) {
	n, k := 300, 30
	for _, m := range []core.Method{core.Orig, core.MethodGcdPad, core.MethodGcdPadNT} {
		plan := core.Select(m, 2048, n, n, stencil.Jacobi.Spec())
		w := stencil.NewTraceWorkload(stencil.Jacobi, n, k, plan)
		accesses := float64(w.AccessCount())
		b.Run(m.String()+"/Full", func(b *testing.B) {
			h := cache.UltraSparc2()
			w.ReplayTrace(h) // warm
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.ReplayTrace(h)
			}
			reportAccessRate(b, accesses)
		})
		b.Run(m.String()+"/Steady", func(b *testing.B) {
			h := cache.UltraSparc2()
			s := cache.NewSteady(h)
			w.ReplayTrace(s) // warm: observes, confirms the cycle
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				w.ReplayTrace(s)
			}
			reportAccessRate(b, accesses)
		})
	}
}

// BenchmarkWarmShare measures cross-point warm-baseline sharing on one
// kernel's sweep grid: points whose selection plans are identical are
// grouped, one lead simulates, and the rest copy its result. The grid is
// a slice of the paper's (REDBLACK has the most plan-identical method
// pairs at these sizes). Results are bit-identical with sharing off
// (TestWarmShareIdentical proves it); the benchmark reports how much
// wall time the copies buy.
func BenchmarkWarmShare(b *testing.B) {
	opt := benchOpt()
	opt.NMin, opt.NMax, opt.NStep = 200, 248, 16
	for _, on := range []bool{false, true} {
		name := "Off"
		if on {
			name = "On"
		}
		b.Run(name, func(b *testing.B) {
			o := opt
			o.DisableWarmShare = !on
			for i := 0; i < b.N; i++ {
				if _, err := bench.MissSweep(stencil.RedBlack, o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func reportAccessRate(b *testing.B, accessesPerOp float64) {
	b.Helper()
	secs := b.Elapsed().Seconds()
	total := accessesPerOp * float64(b.N)
	if secs > 0 {
		b.ReportMetric(total/secs/1e6, "Maccess/s")
		b.ReportMetric(secs*1e9/total, "ns/access")
	}
}

// BenchmarkSimFanout measures the worker-pool fan-out over independent
// sweep cells: the Figure-14 Jacobi GcdPad series, serial versus all
// cores.
func BenchmarkSimFanout(b *testing.B) {
	opt := benchOpt()
	for _, w := range []int{1, cache.DefaultWorkers()} {
		b.Run(fmt.Sprintf("workers%d", w), func(b *testing.B) {
			o := opt
			o.Workers = w
			for i := 0; i < b.N; i++ {
				bench.MissSeries(stencil.Jacobi, core.MethodGcdPad, o)
			}
		})
	}
}

// BenchmarkNativeKernels times the raw kernels on the host (for
// reference; the paper's MFlops comparisons use the cycle model).
func BenchmarkNativeKernels(b *testing.B) {
	n := 300
	for _, k := range stencil.Kernels() {
		for _, m := range []core.Method{core.Orig, core.MethodGcdPad} {
			b.Run(fmt.Sprintf("%s/%s", k, m), func(b *testing.B) {
				w := stencil.NewWorkload(k, n, 16, core.Select(m, 2048, n, n, k.Spec()), stencil.DefaultCoeffs())
				b.SetBytes(w.AccessCount() * 8)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					w.RunNative()
				}
			})
		}
	}
}
