// Package tiling3d is the public API of a reproduction of Rivera & Tseng,
// "Tiling Optimizations for 3D Scientific Computations" (SC 2000): tile
// size selection and array padding for 3D stencil codes on direct-mapped
// caches, together with the substrates the paper's evaluation needs — a
// multi-level cache simulator, the JACOBI/REDBLACK/RESID kernels in
// original and tiled form, a loop-nest IR with the tiling transformation,
// and a multigrid solver.
//
// # Selecting a tile
//
// Describe the stencil (how far it reaches in each dimension and how many
// array planes must stay cached) and ask a selection method for a plan:
//
//	st := tiling3d.Stencil{TrimI: 2, TrimJ: 2, Depth: 3} // +/-1 stencil
//	plan := tiling3d.Select(tiling3d.MethodPad, 2048, n, n, st)
//	// plan.Tile is the iteration tile; plan.DI, plan.DJ the padded dims.
//
// The methods are those of the paper's Table 2: Euc3D (non-conflicting
// tile selection), GcdPad (fixed tile, GCD padding), Pad (padding with
// tile selection), plus the baselines it compares against.
//
// # Applying a plan
//
// Allocate arrays with the plan's padded leading dimensions (Grid3D keeps
// logical extent and allocated dimensions separate) and run the tiled
// loops with plan.Tile. For the paper's kernels both steps are packaged:
//
//	w := tiling3d.NewWorkload(tiling3d.Jacobi, n, 30, plan, tiling3d.DefaultCoeffs())
//	w.RunNative()
//
// The examples/ directory shows complete programs, and internal/bench
// regenerates every table and figure of the paper's evaluation.
package tiling3d

import (
	"tiling3d/internal/cache"
	"tiling3d/internal/core"
	"tiling3d/internal/grid"
	"tiling3d/internal/stencil"
)

// Core selection types (see internal/core for full documentation).
type (
	// Stencil describes a tiled nest's data footprint: trims m, n and
	// array-tile depth ATD.
	Stencil = core.Stencil
	// Tile is an iteration tile (TI, TJ).
	Tile = core.Tile
	// ArrayTile is the array footprint of an iteration tile.
	ArrayTile = core.ArrayTile
	// Plan is a selection result: tile plus padded array dimensions.
	Plan = core.Plan
	// Method identifies a transformation (Table 2).
	Method = core.Method
)

// Methods of the paper's Table 2 plus extra baselines.
const (
	Orig           = core.Orig
	MethodTile     = core.MethodTile
	MethodEuc3D    = core.MethodEuc3D
	MethodGcdPad   = core.MethodGcdPad
	MethodPad      = core.MethodPad
	MethodGcdPadNT = core.MethodGcdPadNT
	MethodLRW      = core.MethodLRW
	MethodEffCache = core.MethodEffCache
)

// Select runs a selection method for an array with lower dimensions
// (di, dj) targeting a direct-mapped cache of cs elements. Inputs are
// assumed valid (positive dims, well-formed stencil, a power-of-two cs
// for the GcdPad family); use SelectChecked for unvetted input.
func Select(m Method, cs, di, dj int, st Stencil) Plan {
	return core.Select(m, cs, di, dj, st)
}

// SelectChecked is Select with input validation: it never panics, and
// returns an error for malformed stencils, non-positive or oversized
// dimensions, unknown methods, or method preconditions (the GcdPad
// family needs a power-of-two cache size).
func SelectChecked(m Method, cs, di, dj int, st Stencil) (Plan, error) {
	return core.SelectChecked(m, cs, di, dj, st)
}

// Euc3D returns the minimum-cost non-conflicting iteration tile
// (Section 3.3).
func Euc3D(cs, di, dj int, st Stencil) (Tile, bool) { return core.Euc3D(cs, di, dj, st) }

// GcdPad returns the fixed power-of-two tile with GCD padding
// (Section 3.4.1).
func GcdPad(cs, di, dj int, st Stencil) Plan { return core.GcdPad(cs, di, dj, st) }

// Pad returns padding with tile-size selection (Section 3.4.2).
func Pad(cs, di, dj int, st Stencil) Plan { return core.Pad(cs, di, dj, st) }

// Cost evaluates the paper's tile cost model (Section 2.3).
func Cost(t Tile, st Stencil) float64 { return core.Cost(t, st) }

// SelfConflicts reports whether an array tile self-interferes in a
// direct-mapped cache of cs elements (ground truth for the selectors).
func SelfConflicts(cs, di, dj, ti, tj, tk int) bool {
	return core.SelfConflicts(cs, di, dj, ti, tj, tk)
}

// Grid and kernel types.
type (
	// Grid3D is a column-major 3D array with padded leading dimensions.
	Grid3D = grid.Grid3D
	// Kernel identifies one of the paper's benchmarks.
	Kernel = stencil.Kernel
	// Coeffs holds kernel constants.
	Coeffs = stencil.Coeffs
	// Workload is a configured kernel instance.
	Workload = stencil.Workload
)

// The paper's three kernel benchmarks.
const (
	Jacobi   = stencil.Jacobi
	RedBlack = stencil.RedBlack
	Resid    = stencil.Resid
)

// NewGrid3D allocates an unpadded grid.
func NewGrid3D(ni, nj, nk int) *Grid3D { return grid.New3D(ni, nj, nk) }

// NewGrid3DPadded allocates a grid with padded leading dimensions, e.g.
// from a Plan's DI and DJ. It returns an error for non-positive extents
// or padded dimensions smaller than the logical ones; MustGrid3DPadded
// panics instead, for dimensions that come from a Plan.
func NewGrid3DPadded(ni, nj, nk, di, dj int) (*Grid3D, error) {
	return grid.New3DPadded(ni, nj, nk, di, dj)
}

// MustGrid3DPadded is NewGrid3DPadded for pre-validated dimensions.
func MustGrid3DPadded(ni, nj, nk, di, dj int) *Grid3D {
	return grid.Must3DPadded(ni, nj, nk, di, dj)
}

// DefaultCoeffs returns convergent kernel constants.
func DefaultCoeffs() Coeffs { return stencil.DefaultCoeffs() }

// NewWorkload builds a kernel instance with arrays laid out per the plan.
func NewWorkload(k Kernel, n, depth int, plan Plan, c Coeffs) *Workload {
	return stencil.NewWorkload(k, n, depth, plan, c)
}

// User-defined stencils: arbitrary weighted shapes get the same
// treatment as the paper's kernels — original and tiled execution, trace
// replay, and selection inputs derived from the taps.
type (
	// Tap is one stencil point: neighbor offset and weight.
	Tap = stencil.Tap
	// Shape is a user-defined weighted stencil.
	Shape = stencil.Shape
)

// NewShape validates a tap list into a Shape.
func NewShape(taps []Tap) (Shape, error) { return stencil.NewShape(taps) }

// Box7 returns the 7-point star stencil with the given center and face
// weights.
func Box7(cw, fw float64) Shape { return stencil.Box7(cw, fw) }

// Cache simulation types.
type (
	// CacheConfig describes one simulated cache level.
	CacheConfig = cache.Config
	// Hierarchy is a multi-level trace-driven cache simulator.
	Hierarchy = cache.Hierarchy
	// CacheStats counts accesses and misses.
	CacheStats = cache.Stats
)

// UltraSparc2 builds the paper's simulated memory system (16KB + 2MB
// direct-mapped).
func UltraSparc2() *Hierarchy { return cache.UltraSparc2() }

// NewHierarchy builds a cache hierarchy from level configs, L1 first,
// returning an error for invalid geometry (non-positive sizes, a line
// size that is not a power of two or does not divide the capacity, an
// associativity that does not divide the line count).
func NewHierarchy(cfgs ...CacheConfig) (*Hierarchy, error) { return cache.NewHierarchy(cfgs...) }

// MustHierarchy is NewHierarchy for pre-validated configurations; it
// panics on invalid geometry.
func MustHierarchy(cfgs ...CacheConfig) *Hierarchy { return cache.MustHierarchy(cfgs...) }
